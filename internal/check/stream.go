package check

import (
	"hbcache/internal/isa"
	"hbcache/internal/mem"
)

// Stream is a lightweight cpu.Checker that folds every retired
// instruction into the same FNV-1a stream hash the golden model
// computes, without a functional hierarchy behind it. It is the
// cheapest possible witness that two runs retired the identical
// instruction stream — the exact-resume tests hang their bit-identity
// claim on it — and its state is two words, so it snapshots trivially.
type Stream struct {
	hash  uint64
	count uint64
}

// StreamState is a Stream's serializable state.
type StreamState struct {
	Hash  uint64 `json:"hash"`
	Count uint64 `json:"count"`
}

// NewStream returns a stream hasher at the FNV offset basis.
func NewStream() *Stream {
	return &Stream{hash: hashSeed}
}

// Retire implements cpu.Checker.
func (s *Stream) Retire(now mem.Cycle, inst isa.Inst, seq uint64) {
	s.hash = hashStep(s.hash, inst)
	s.count++
}

// Forward implements cpu.Checker (no-op).
func (s *Stream) Forward(now mem.Cycle, loadSeq, loadAddr, storeSeq, storeAddr uint64) {}

// EndCycle implements cpu.Checker (no-op).
func (s *Stream) EndCycle(now mem.Cycle) {}

// Hash returns the running FNV-1a hash over the retired stream.
func (s *Stream) Hash() uint64 { return s.hash }

// Count returns how many retirements have been folded in.
func (s *Stream) Count() uint64 { return s.count }

// State exports the hasher for a snapshot.
func (s *Stream) State() StreamState { return StreamState{Hash: s.hash, Count: s.count} }

// Restore overwrites the hasher from a snapshot.
func (s *Stream) Restore(st StreamState) { s.hash, s.count = st.Hash, st.Count }
