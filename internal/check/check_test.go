package check

import (
	"testing"

	"hbcache/internal/cpu"
	"hbcache/internal/mem"
	"hbcache/internal/workload"
)

// diffInsts is sized so every workload's region set is well exercised
// (several L1 fills per set) while the full 9-benchmark sweep stays
// inside a normal `go test` budget.
const diffInsts = 100_000

func sramDiff(bench string, seed uint64) DiffConfig {
	return DiffConfig{
		Benchmark: bench,
		Seed:      seed,
		CPU:       cpu.DefaultConfig(),
		Memory:    mem.DefaultSRAMSystem(16<<10, 1, mem.PortConfig{Kind: mem.IdealPorts, Count: 2}, false),
		Insts:     diffInsts,
	}
}

// TestDifferentialAllBenchmarks is the tentpole assertion: for every
// Table 2 workload the out-of-order pipeline's retired stream agrees
// exactly — event totals, miss counts, stream hash — with the golden
// in-order model.
func TestDifferentialAllBenchmarks(t *testing.T) {
	for _, bench := range workload.BenchmarkNames() {
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			rep, err := RunDifferential(sramDiff(bench, 1))
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Compare(); err != nil {
				t.Error(err)
			}
			if err := rep.CrossCheck(0.05); err != nil {
				t.Error(err)
			}
			if rep.Golden.Retired < diffInsts {
				t.Errorf("golden retired %d, want >= %d", rep.Golden.Retired, diffInsts)
			}
		})
	}
}

// TestDifferentialWithInvariants reruns the representative subset with
// the cycle-level invariant checker installed: same exact agreement,
// and the invariant pass itself must stay silent.
func TestDifferentialWithInvariants(t *testing.T) {
	for _, bench := range workload.RepresentativeNames() {
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			cfg := sramDiff(bench, 2)
			cfg.Insts = 30_000
			cfg.CheckInvariants = true
			rep, err := RunDifferential(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Compare(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialPortAndBufferVariants checks that exact agreement is
// insensitive to the timing-side organization: ports, banking, the
// line buffer, and the DRAM organization change performance, never
// architectural event totals.
func TestDifferentialPortAndBufferVariants(t *testing.T) {
	variants := map[string]mem.SystemConfig{
		"duplicate":  mem.DefaultSRAMSystem(16<<10, 1, mem.PortConfig{Kind: mem.DuplicatePorts}, false),
		"banked8":    mem.DefaultSRAMSystem(16<<10, 2, mem.PortConfig{Kind: mem.BankedPorts, Count: 8}, false),
		"linebuffer": mem.DefaultSRAMSystem(16<<10, 2, mem.PortConfig{Kind: mem.IdealPorts, Count: 1}, true),
		"dram":       mem.DefaultDRAMSystem(4, false),
	}
	for name, memCfg := range variants {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := sramDiff("gcc", 3)
			cfg.Memory = memCfg
			cfg.Insts = 50_000
			rep, err := RunDifferential(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Compare(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestFuncCacheLRU pins the reference cache's own behaviour on a
// hand-computable sequence: 2 sets x 2 ways, 32-byte lines.
func TestFuncCacheLRU(t *testing.T) {
	c, err := newFuncCache(128, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := func(addr uint64, store bool) bool {
		miss, _ := c.access(addr, store)
		return miss
	}
	// Lines 0 and 2 map to set 0; 1 and 3 to set 1.
	if !ref(0, false) || !ref(32, false) || !ref(64, false) {
		t.Fatal("cold misses expected")
	}
	if ref(0, false) {
		t.Fatal("line 0 should still be resident in set 0")
	}
	// Set 0 holds {0 (MRU), 64}; filling line 4 must evict line 64.
	if !ref(128, true) {
		t.Fatal("line 4 should miss")
	}
	if ref(0, false) {
		t.Fatal("line 0 was MRU and must survive")
	}
	if !ref(64, false) {
		t.Fatal("line 2 was LRU and must have been evicted")
	}
	if got := c.Misses(); got != 5 {
		t.Fatalf("misses = %d, want 5", got)
	}
}

// TestFuncCacheRejectsBadGeometry covers the constructor's validation.
func TestFuncCacheRejectsBadGeometry(t *testing.T) {
	for _, tc := range [][3]int{{0, 32, 1}, {128, 0, 1}, {128, 32, 0}, {96, 32, 2}, {100, 32, 1}} {
		if _, err := newFuncCache(tc[0], tc[1], tc[2]); err == nil {
			t.Errorf("newFuncCache(%d, %d, %d) accepted invalid geometry", tc[0], tc[1], tc[2])
		}
	}
}

// TestGoldenDeterminism: two golden runs from the same seed agree
// exactly, and a different seed produces a different stream hash.
func TestGoldenDeterminism(t *testing.T) {
	memCfg := mem.DefaultSRAMSystem(16<<10, 1, mem.PortConfig{Kind: mem.IdealPorts, Count: 2}, false)
	run := func(seed uint64) Totals {
		g, err := NewGolden(workload.MustNew("li", seed), memCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Run(20_000); err != nil {
			t.Fatal(err)
		}
		return g.Totals()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if c := run(8); c.StreamHash == a.StreamHash {
		t.Fatal("different seeds produced identical stream hashes")
	}
}
