package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"

	"hbcache/internal/sim"
)

// prewarmKeyVersion tags the prewarm-snapshot content address. It is
// independent of the result cache's keyVersion: a snapshot is valid as
// long as the machine state it captures is, which changes with the
// snapshot format, not with result-encoding changes.
const prewarmKeyVersion = "hbcache-snap-v1"

// PrewarmKey returns the content address of a config's end-of-prewarm
// machine state: the hex SHA-256 of its sim.PrewarmProjection under the
// snapshot key version. Sweep neighbors that differ only in measure
// windows or sampling plans share a key — and therefore one prewarm
// snapshot.
func PrewarmKey(cfg sim.Config) (string, error) {
	b, err := json.Marshal(keyEnvelope{Version: prewarmKeyVersion, Config: sim.PrewarmProjection(cfg)})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Forget drops the memoized outcome for cfg, so the next submission of
// the same canonical config re-executes instead of replaying the memo.
// The service's job-resume path needs this: the runner memoizes
// failures (deterministic sims fail deterministically), but a
// budget-truncated job that parked an abort snapshot will make fresh
// progress on re-execution. Callers must not Forget a config while a
// job for it is still in flight.
func (r *Runner) Forget(cfg sim.Config) error {
	key, err := Key(cfg)
	if err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.memo, key)
	r.mu.Unlock()
	return nil
}

// snapshotPaths locates cfg's snapshot files under dir: the abort
// checkpoint is keyed by the full canonical config (a resumed job must
// match exactly), the prewarm checkpoint by the prewarm projection (so
// neighbors share it).
func snapshotPaths(dir string, cfg sim.Config) (abortPath, prewarmPath string, err error) {
	key, err := Key(cfg)
	if err != nil {
		return "", "", err
	}
	pkey, err := PrewarmKey(cfg)
	if err != nil {
		return "", "", err
	}
	return filepath.Join(dir, "abort-"+key+".json"), filepath.Join(dir, "prewarm-"+pkey+".json"), nil
}

// snapshotSim wraps the default simulator with checkpoint/restore under
// dir. Resolution order per attempt: resume this config's abort
// snapshot if one is parked; else resume a shared prewarm snapshot if a
// neighbor already produced one; else run cold and leave a prewarm
// snapshot behind for the next neighbor. Budget-truncated attempts park
// an abort snapshot so the next attempt continues instead of
// restarting. An unusable snapshot (sim.ErrSnapshot — it was
// quarantined to *.corrupt) falls back to one cold attempt, so a
// corrupt file costs throughput, never correctness or availability.
func snapshotSim(dir string, runOpts sim.RunOpts) func(context.Context, sim.Config) (sim.Result, error) {
	return func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		opts := runOpts
		cfg = cfg.WithDefaults()
		// Sampled runs neither resume nor leave snapshots: their retired
		// stream is discontinuous, so exact-resume semantics don't exist
		// for them (and sim rejects Sample+Resume outright).
		if cfg.Sample != nil {
			return sim.RunContext(ctx, cfg, opts)
		}
		abortPath, prewarmPath, err := snapshotPaths(dir, cfg)
		if err != nil {
			return sim.RunContext(ctx, cfg, opts)
		}
		opts.SnapshotOnAbort = abortPath
		if _, serr := os.Stat(abortPath); serr == nil {
			opts.Resume = abortPath
		} else if _, serr := os.Stat(prewarmPath); serr == nil {
			opts.Resume = prewarmPath
		} else {
			opts.SnapshotPrewarm = prewarmPath
		}
		res, err := sim.RunContext(ctx, cfg, opts)
		if errors.Is(err, sim.ErrSnapshot) {
			// The bad file is quarantined; this config runs cold once and
			// re-publishes the prewarm snapshot for its neighbors.
			opts.Resume = ""
			opts.SnapshotPrewarm = prewarmPath
			res, err = sim.RunContext(ctx, cfg, opts)
		}
		if err == nil {
			// The job completed; a leftover abort checkpoint would only
			// shadow the result cache on some future re-run.
			os.Remove(abortPath)
		}
		return res, err
	}
}
