package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hbcache/internal/cpu"
	"hbcache/internal/mem"
	"hbcache/internal/sim"
)

func snapTestConfig(measure uint64) sim.Config {
	return sim.Config{
		Benchmark:    "gcc",
		Seed:         1,
		CPU:          cpu.DefaultConfig(),
		Memory:       mem.DefaultSRAMSystem(32<<10, 1, mem.PortConfig{Kind: mem.DuplicatePorts}, true),
		PrewarmInsts: 100_000,
		WarmupInsts:  5_000,
		MeasureInsts: measure,
	}
}

func TestPrewarmKeySharedAcrossMeasureWindows(t *testing.T) {
	a, err := PrewarmKey(snapTestConfig(40_000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrewarmKey(snapTestConfig(60_000))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("configs differing only in measure window got different prewarm keys")
	}
	sampled := snapTestConfig(40_000)
	sampled.Sample = &sim.SampleSpec{IntervalInsts: 10_000, WindowInsts: 1_000, WarmupInsts: 500}
	c, err := PrewarmKey(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatal("sampling plan leaked into the prewarm key")
	}
	other := snapTestConfig(40_000)
	other.Seed = 2
	d, err := PrewarmKey(other)
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Fatal("different seeds share a prewarm key")
	}
	jobA, err := Key(snapTestConfig(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if jobA == a {
		t.Fatal("prewarm key collides with the result-cache key space")
	}
}

// TestSnapshotDirSharesPrewarm pins the sweep acceleration: with a
// snapshot dir, the first job leaves a prewarm checkpoint and a
// measure-window neighbor resumes it — producing exactly the result it
// would have produced from cold.
func TestSnapshotDirSharesPrewarm(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cold, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := cold.RunOne(ctx, snapTestConfig(40_000))
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := cold.RunOne(ctx, snapTestConfig(60_000))
	if err != nil {
		t.Fatal(err)
	}

	snap, err := New(Options{Workers: 1, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := snap.RunOne(ctx, snapTestConfig(40_000))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "prewarm-*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("prewarm snapshots after first job: %v (err %v), want exactly 1", entries, err)
	}
	gotB, err := snap.RunOne(ctx, snapTestConfig(60_000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA) || !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("snapshot-dir results diverge from cold runs:\ncold A %+v\nsnap A %+v\ncold B %+v\nsnap B %+v", wantA, gotA, wantB, gotB)
	}
	// The neighbor must not have published a second prewarm snapshot.
	entries, _ = filepath.Glob(filepath.Join(dir, "prewarm-*.json"))
	if len(entries) != 1 {
		t.Fatalf("prewarm snapshots after neighbor: %d, want 1 (shared)", len(entries))
	}
}

// TestSnapshotDirAbortResume pins budget-truncated progress: a job
// killed by its cycle budget parks an abort snapshot; re-submitting
// (after Forget — failures are memoized) resumes and eventually
// completes with the exact cold-run result.
func TestSnapshotDirAbortResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := snapTestConfig(40_000)

	cold, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.RunOne(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	r, err := New(Options{Workers: 1, SnapshotDir: dir, SimMaxCycles: 5_000, RetryBackoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Result
	attempts := 0
	for {
		attempts++
		if attempts > 50 {
			t.Fatal("abort/resume chain did not terminate")
		}
		got, err = r.RunOne(ctx, cfg)
		if err == nil {
			break
		}
		if !errors.Is(err, sim.ErrBudget) {
			t.Fatalf("attempt %d: %v", attempts, err)
		}
		if _, serr := os.Stat(filepath.Join(dir, "abort-"+mustKey(t, cfg)+".json")); serr != nil {
			t.Fatalf("attempt %d failed with no abort snapshot parked: %v", attempts, serr)
		}
		if ferr := r.Forget(cfg); ferr != nil {
			t.Fatal(ferr)
		}
	}
	if attempts < 2 {
		t.Fatal("cycle budget of 5000 completed in one attempt; the resume path was never exercised")
	}
	t.Logf("converged after %d attempts", attempts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("abort/resume result diverges from cold run:\ncold %+v\ngot  %+v", want, got)
	}
	if _, serr := os.Stat(filepath.Join(dir, "abort-"+mustKey(t, cfg)+".json")); !errors.Is(serr, os.ErrNotExist) {
		t.Fatal("completed job left its abort snapshot behind")
	}
}

// TestSnapshotDirCorruptFallsBackCold: a quarantined snapshot must cost
// one cold re-run, not the job.
func TestSnapshotDirCorruptFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := snapTestConfig(40_000)

	r, err := New(Options{Workers: 1, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.RunOne(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the shared prewarm snapshot in place.
	entries, _ := filepath.Glob(filepath.Join(dir, "prewarm-*.json"))
	if len(entries) != 1 {
		t.Fatalf("prewarm snapshots: %d, want 1", len(entries))
	}
	if err := os.WriteFile(entries[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Forget(cfg); err != nil {
		t.Fatal(err)
	}
	got, err := r.RunOne(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("corrupt-fallback result diverges:\nwant %+v\ngot  %+v", want, got)
	}
	if _, err := os.Stat(entries[0] + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	// The cold fallback must have re-published a healthy prewarm
	// snapshot for future neighbors.
	if _, err := os.Stat(entries[0]); err != nil {
		t.Fatalf("prewarm snapshot not re-published after quarantine: %v", err)
	}
}

// TestForget: a memoized failure is replayed until Forget clears it.
func TestForget(t *testing.T) {
	calls := 0
	r, err := New(Options{Workers: 1, RetryBackoff: -1, Sim: func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		calls++
		if calls == 1 {
			return sim.Result{}, sim.ErrBudget // fatal, not retried
		}
		return sim.Result{Benchmark: cfg.Benchmark}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := snapTestConfig(40_000)
	if _, err := r.RunOne(ctx, cfg); !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("first run: err=%v, want ErrBudget", err)
	}
	if _, err := r.RunOne(ctx, cfg); !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("memoized failure not replayed: err=%v", err)
	}
	if calls != 1 {
		t.Fatalf("memoized failure re-simulated: %d calls", calls)
	}
	if err := r.Forget(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunOne(ctx, cfg); err != nil {
		t.Fatalf("post-Forget run: %v", err)
	}
	if calls != 2 {
		t.Fatalf("Forget did not force re-execution: %d calls", calls)
	}
}

// TestSnapshotPathsDisjoint guards the file namespace: abort and
// prewarm files must never collide for any config.
func TestSnapshotPathsDisjoint(t *testing.T) {
	a, p, err := snapshotPaths("d", snapTestConfig(40_000))
	if err != nil {
		t.Fatal(err)
	}
	if a == p || !strings.Contains(a, "abort-") || !strings.Contains(p, "prewarm-") {
		t.Fatalf("suspicious snapshot paths: %q %q", a, p)
	}
}
