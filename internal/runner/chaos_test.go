package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hbcache/internal/fault"
	"hbcache/internal/sim"
)

// countingSim wraps stubSim with a call counter.
func countingSim(calls *atomic.Int64) func(context.Context, sim.Config) (sim.Result, error) {
	return func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubSim(ctx, cfg)
	}
}

// scanCacheFiles returns the cache files under dir grouped by suffix.
func scanCacheFiles(t *testing.T, dir string) (entries, corrupt, tmp []string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		switch {
		case strings.HasSuffix(path, ".corrupt"):
			corrupt = append(corrupt, path)
		case strings.Contains(filepath.Base(path), ".tmp-"):
			tmp = append(tmp, path)
		case filepath.Ext(path) == ".json":
			entries = append(entries, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

// TestChaosCorruptCacheEntryQuarantined: a cache entry corrupted on the
// way to disk is detected on the next read, renamed *.corrupt, counted
// in metrics, and recomputed exactly once — never silently re-missed
// forever and never re-parsed.
func TestChaosCorruptCacheEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	reg := fault.New(11).Add(fault.Rule{Site: fault.SiteCacheBytes, Kind: fault.KindCorrupt, Limit: 1})
	first, err := New(Options{Workers: 1, CacheDir: dir, Faults: reg, Sim: countingSim(&calls)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.RunOne(context.Background(), stubConfig(0)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("first run simulated %d times, want 1", calls.Load())
	}

	// A fresh runner over the same dir: the corrupt entry must not be
	// served, must be quarantined, and the job recomputed.
	second, err := New(Options{Workers: 1, CacheDir: dir, Sim: countingSim(&calls)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := second.RunOne(context.Background(), stubConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != 1 {
		t.Errorf("recomputed result = %+v, want the stub's", res)
	}
	if calls.Load() != 2 {
		t.Errorf("corrupt entry served or lost: %d total sims, want 2", calls.Load())
	}
	if m := second.Metrics(); m.CorruptEntries != 1 {
		t.Errorf("CorruptEntries = %d, want 1", m.CorruptEntries)
	}
	entries, corrupt, tmp := scanCacheFiles(t, dir)
	if len(corrupt) != 1 {
		t.Errorf("found %d *.corrupt files, want 1 (preserved for postmortem)", len(corrupt))
	}
	if len(entries) != 1 {
		t.Errorf("found %d good entries, want 1 (rewritten after recompute)", len(entries))
	}
	if len(tmp) != 0 {
		t.Errorf("stray temp files left behind: %v", tmp)
	}

	// Third runner: the rewritten entry is intact, so a pure cache hit.
	third, err := New(Options{Workers: 1, CacheDir: dir, Sim: countingSim(&calls)})
	if err != nil {
		t.Fatal(err)
	}
	jr := third.RunJob(context.Background(), stubConfig(0))
	if jr.Err != nil || !jr.CacheHit {
		t.Errorf("after quarantine+recompute, RunJob = %+v, want clean cache hit", jr)
	}
	if calls.Load() != 2 {
		t.Errorf("rewritten entry re-simulated: %d total sims, want 2", calls.Load())
	}
}

// TestChaosCacheReadErrorIsMiss: an injected I/O error on cache read
// degrades to a miss (re-simulate) without quarantining anything.
func TestChaosCacheReadErrorIsMiss(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	warm, err := New(Options{Workers: 1, CacheDir: dir, Sim: countingSim(&calls)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.RunOne(context.Background(), stubConfig(0)); err != nil {
		t.Fatal(err)
	}

	reg := fault.New(1).Add(fault.Rule{Site: fault.SiteCacheRead, Kind: fault.KindError, Limit: 1})
	r, err := New(Options{Workers: 1, CacheDir: dir, Faults: reg, Sim: countingSim(&calls)})
	if err != nil {
		t.Fatal(err)
	}
	jr := r.RunJob(context.Background(), stubConfig(0))
	if jr.Err != nil || jr.CacheHit {
		t.Fatalf("RunJob under read fault = %+v, want fresh simulation", jr)
	}
	if calls.Load() != 2 {
		t.Errorf("sims = %d, want 2 (read error forced a recompute)", calls.Load())
	}
	if m := r.Metrics(); m.CorruptEntries != 0 {
		t.Errorf("CorruptEntries = %d, want 0 (I/O error is not corruption)", m.CorruptEntries)
	}
	if _, corrupt, _ := scanCacheFiles(t, dir); len(corrupt) != 0 {
		t.Errorf("read error quarantined files: %v", corrupt)
	}
}

// TestChaosCacheWriteErrorDoesNotFailJob: the result is good even if
// checkpointing it fails; the job succeeds and a later run recomputes.
func TestChaosCacheWriteErrorDoesNotFailJob(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	reg := fault.New(1).Add(fault.Rule{Site: fault.SiteCacheWrite, Kind: fault.KindError, Limit: 1})
	r, err := New(Options{Workers: 1, CacheDir: dir, Faults: reg, Sim: countingSim(&calls)})
	if err != nil {
		t.Fatal(err)
	}
	jr := r.RunJob(context.Background(), stubConfig(0))
	if jr.Err != nil {
		t.Fatalf("job failed on a cache-write error: %v", jr.Err)
	}
	if n, err := r.store.(*Cache).Len(); err != nil || n != 0 {
		t.Errorf("cache Len = %d (%v), want 0 (write was rejected)", n, err)
	}
}

// TestRetryableClassification pins which errors consume retries.
func TestRetryableClassification(t *testing.T) {
	retryable := []error{
		errors.New("flaky infrastructure"),
		fmt.Errorf("wrapped: %w", fault.ErrInjected),
	}
	fatal := []error{
		nil,
		context.Canceled,
		context.DeadlineExceeded,
		sim.ErrAborted,
		fmt.Errorf("runner: gcc: %w", sim.ErrBudget),
		fmt.Errorf("%w: unknown benchmark", sim.ErrInvalidConfig),
		// An invariant violation is deterministic — retrying replays the
		// identical broken machine.
		fmt.Errorf("%w: cycle 42: rob retired out of order", sim.ErrCheckFailed),
	}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	for _, err := range fatal {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

// TestFatalErrorSkipsRetries: a budget-class failure is not retried
// even with retries configured — the same deterministic failure would
// just recur.
func TestFatalErrorSkipsRetries(t *testing.T) {
	var calls atomic.Int64
	r := newTest(t, Options{Workers: 1, Retries: 3})
	r.sim = func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return sim.Result{}, fmt.Errorf("attempt: %w", sim.ErrBudget)
	}
	jr := r.RunJob(context.Background(), stubConfig(0))
	if jr.Err == nil || !errors.Is(jr.Err, sim.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget surfaced", jr.Err)
	}
	if calls.Load() != 1 || jr.Attempts != 1 {
		t.Errorf("fatal error consumed %d attempts (%d calls), want exactly 1", jr.Attempts, calls.Load())
	}
	if m := r.Metrics(); m.Retries != 0 {
		t.Errorf("Retries = %d, want 0", m.Retries)
	}
}

// TestBackoffBetweenRetries: retries wait out an exponential backoff
// (with jitter, the first two gaps total at least half the nominal
// 20ms+40ms), and a cancelled context cuts the wait short.
func TestBackoffBetweenRetries(t *testing.T) {
	var calls atomic.Int64
	r, err := New(Options{Workers: 1, Retries: 2, RetryBackoff: 20 * time.Millisecond,
		Sim: func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
			calls.Add(1)
			return sim.Result{}, errors.New("transient")
		}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	jr := r.RunJob(context.Background(), stubConfig(0))
	elapsed := time.Since(start)
	if jr.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", jr.Attempts)
	}
	if min := 30 * time.Millisecond; elapsed < min {
		t.Errorf("3 attempts finished in %v, want >= %v of backoff", elapsed, min)
	}

	// Cancellation during backoff returns promptly with ctx's error.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	slow, err := New(Options{Workers: 1, Retries: 5, RetryBackoff: 10 * time.Second,
		Sim: func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
			return sim.Result{}, errors.New("transient")
		}})
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	jr = slow.RunJob(ctx, stubConfig(1))
	if !errors.Is(jr.Err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", jr.Err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("cancelled backoff still waited %v", waited)
	}
}

// TestCrashSafetyResumeFromCache is the crash-safety satellite: a
// cached sweep hard-cancelled mid-flight leaves no partial or corrupt
// files, and a re-run resumes from cache, simulating only the points
// the first run never completed.
func TestCrashSafetyResumeFromCache(t *testing.T) {
	dir := t.TempDir()
	const n = 12
	cfgs := stubConfigs(n)

	var firstCalls atomic.Int64
	cancelAt := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-cancelAt
		cancel() // hard-cancel while jobs are still being dispatched
	}()
	first, err := New(Options{Workers: 2, CacheDir: dir,
		Sim: func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
			if firstCalls.Add(1) == 4 {
				close(cancelAt)
			}
			time.Sleep(time.Millisecond)
			return stubSim(ctx, cfg)
		}})
	if err != nil {
		t.Fatal(err)
	}
	rs, runErr := first.Run(ctx, cfgs)
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", runErr)
	}
	completed := 0
	for _, jr := range rs {
		if jr.Err == nil {
			completed++
		}
	}
	if completed == 0 || completed == n {
		t.Fatalf("cancel landed uselessly: %d/%d completed; the test needs a mid-flight cut", completed, n)
	}

	// No partial/corrupt state on disk, and every completed point is
	// checkpointed.
	entries, corrupt, tmp := scanCacheFiles(t, dir)
	if len(tmp) != 0 || len(corrupt) != 0 {
		t.Fatalf("cancelled run left tmp=%v corrupt=%v", tmp, corrupt)
	}
	if len(entries) < completed {
		t.Errorf("%d completed points but only %d cache entries", completed, len(entries))
	}

	// Re-run: cached points load, the rest simulate; everything lands.
	var secondCalls atomic.Int64
	second, err := New(Options{Workers: 2, CacheDir: dir, Sim: countingSim(&secondCalls)})
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := second.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range rs2 {
		if jr.Err != nil {
			t.Errorf("resumed job %d: %v", i, jr.Err)
		}
		if jr.Result.IPC != float64(i+1) {
			t.Errorf("resumed job %d: IPC = %v, want %v", i, jr.Result.IPC, float64(i+1))
		}
	}
	if got, max := int(secondCalls.Load()), n-len(entries); got > max {
		t.Errorf("resume re-simulated %d points, want <= %d (the uncached ones)", got, max)
	}
	if m := second.Metrics(); m.CacheHits != len(entries) {
		t.Errorf("resume CacheHits = %d, want %d", m.CacheHits, len(entries))
	}
}

// TestChaosPanicInjection: an injected panic at the sim site is
// recovered, retried (panics are retryable), and the job succeeds on
// the retry.
func TestChaosPanicInjection(t *testing.T) {
	reg := fault.New(1).Add(fault.Rule{Site: fault.SiteSimRun, Kind: fault.KindPanic, Limit: 1})
	var calls atomic.Int64
	r, err := New(Options{Workers: 1, Retries: 1, RetryBackoff: -1, Faults: reg,
		Sim: func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
			calls.Add(1)
			if err := reg.Fire(ctx, fault.SiteSimRun); err != nil {
				return sim.Result{}, err
			}
			return stubSim(ctx, cfg)
		}})
	if err != nil {
		t.Fatal(err)
	}
	jr := r.RunJob(context.Background(), stubConfig(0))
	if jr.Err != nil {
		t.Fatalf("job failed despite retry: %v", jr.Err)
	}
	if jr.Attempts != 2 || calls.Load() != 2 {
		t.Errorf("attempts = %d (calls %d), want panic on 1st, success on 2nd", jr.Attempts, calls.Load())
	}
	if m := r.Metrics(); m.Retries != 1 || m.Errors != 0 {
		t.Errorf("metrics = %+v, want Retries 1, Errors 0", m)
	}
}
