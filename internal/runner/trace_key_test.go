package runner

import (
	"path/filepath"
	"testing"

	"hbcache/internal/sim"
	"hbcache/internal/workload"
)

// traceAt records a small trace for (bench, seed), writes it to path
// (overwriting whatever held the path before), and returns its digest.
func traceAt(t *testing.T, path, bench string, seed uint64) string {
	t.Helper()
	data, err := workload.RecordTrace(bench, seed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteTraceFile(path, data); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Digest()
}

// TestKeyTraceDigestNeverAliases is the v4 regression test: two
// different traces occupying the same path at different times must key
// — and therefore cache — differently, while the same recording keys
// identically from any path. Before v4 the key ignored traces entirely,
// so the second upload to a reused path would have served the first
// upload's cached result.
func TestKeyTraceDigestNeverAliases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workload.trace")
	digestA := traceAt(t, path, "gcc", 1)

	cfg := baseConfig()
	cfg.Trace = &sim.TraceRef{Path: path, Digest: digestA}
	keyA := mustKey(t, cfg)

	// A different recording lands on the very same path.
	digestB := traceAt(t, path, "gcc", 2)
	if digestA == digestB {
		t.Fatal("distinct recordings share a digest")
	}
	cfgB := baseConfig()
	cfgB.Trace = &sim.TraceRef{Path: path, Digest: digestB}
	keyB := mustKey(t, cfgB)
	if keyA == keyB {
		t.Fatal("different traces at the same path alias one cache key")
	}

	// Pin it end-to-end at the cache layer: a result stored for trace A
	// must be invisible to trace B's lookup.
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(keyA, cfg, sim.Result{Benchmark: "gcc", Cycles: 123}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(keyB); ok {
		t.Fatal("trace B's key hit trace A's cached result")
	}
	if _, ok := cache.Get(keyA); !ok {
		t.Fatal("trace A's own result did not round-trip")
	}
}

// TestKeyTraceLocationIndependent pins the flip side: the same
// recording referenced from two different paths (local submit vs a
// worker's fetched copy) is one simulation and must share one key.
func TestKeyTraceLocationIndependent(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.trace")
	pathB := filepath.Join(dir, "b", "copied.trace")
	digest := traceAt(t, pathA, "li", 7)
	if got := traceAt(t, pathB, "li", 7); got != digest {
		t.Fatal("same recording produced different digests")
	}

	cfgA, cfgB := baseConfig(), baseConfig()
	cfgA.Trace = &sim.TraceRef{Path: pathA, Digest: digest}
	cfgB.Trace = &sim.TraceRef{Path: pathB, Digest: digest}
	if mustKey(t, cfgA) != mustKey(t, cfgB) {
		t.Fatal("same trace digest keyed differently across paths")
	}

	// And a trace-backed config never collides with the synthetic
	// config it was recorded from.
	if mustKey(t, cfgA) == mustKey(t, baseConfig()) {
		t.Fatal("trace-backed config aliases its synthetic origin")
	}
}

// TestKeyRejectsUnresolvedTraceRef: keying a path-only ref would let
// whatever bytes later occupy the path impersonate a cached result, so
// Key refuses until a boundary resolves the digest.
func TestKeyRejectsUnresolvedTraceRef(t *testing.T) {
	cfg := baseConfig()
	cfg.Trace = &sim.TraceRef{Path: "/tmp/somewhere.trace"}
	if _, err := Key(cfg); err == nil {
		t.Fatal("Key accepted a trace ref with no digest")
	}
}
