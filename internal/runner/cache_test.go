package runner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbcache/internal/cpu"
	"hbcache/internal/mem"
	"hbcache/internal/sim"
)

func baseConfig() sim.Config {
	return sim.Config{
		Benchmark:    "gcc",
		Seed:         1,
		CPU:          cpu.DefaultConfig(),
		Memory:       mem.DefaultSRAMSystem(32<<10, 1, mem.PortConfig{Kind: mem.DuplicatePorts}, true),
		PrewarmInsts: 1000,
		WarmupInsts:  100,
		MeasureInsts: 2000,
	}
}

func mustKey(t *testing.T, cfg sim.Config) string {
	t.Helper()
	k, err := Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyIdenticalConfigsHit(t *testing.T) {
	a, b := baseConfig(), baseConfig()
	if mustKey(t, a) != mustKey(t, b) {
		t.Error("identical configs produced different keys")
	}
	// Pointer identity must not matter, only pointed-to values.
	l2 := mem.DefaultL2Config(10)
	a.Memory.L2, b.Memory.L2 = &l2, func() *mem.L2Config { c := mem.DefaultL2Config(10); return &c }()
	if mustKey(t, a) != mustKey(t, b) {
		t.Error("equal L2 configs behind distinct pointers produced different keys")
	}
}

func TestKeyCanonicalizesDefaultWindows(t *testing.T) {
	implicit := baseConfig()
	implicit.PrewarmInsts, implicit.WarmupInsts, implicit.MeasureInsts = 0, 0, 0
	explicit := baseConfig()
	explicit.PrewarmInsts = sim.DefaultPrewarm
	explicit.WarmupInsts = sim.DefaultWarmup
	explicit.MeasureInsts = sim.DefaultMeasure
	if mustKey(t, implicit) != mustKey(t, explicit) {
		t.Error("zero windows and explicit defaults simulate identically but keyed differently")
	}
}

// TestKeyFieldSensitivity mutates one behavior-relevant field at a time
// and requires every variant to land on a distinct key.
func TestKeyFieldSensitivity(t *testing.T) {
	variants := map[string]func(*sim.Config){
		"benchmark":   func(c *sim.Config) { c.Benchmark = "tomcatv" },
		"seed":        func(c *sim.Config) { c.Seed = 2 },
		"prewarm":     func(c *sim.Config) { c.PrewarmInsts = 5000 },
		"warmup":      func(c *sim.Config) { c.WarmupInsts = 500 },
		"measure":     func(c *sim.Config) { c.MeasureInsts = 9000 },
		"fetch width": func(c *sim.Config) { c.CPU.FetchWidth = 8 },
		"window size": func(c *sim.Config) { c.CPU.WindowSize = 128 },
		"gshare":      func(c *sim.Config) { c.CPU.Gshare = true; c.CPU.GshareHistoryBits = 9 },
		"fu limits":   func(c *sim.Config) { c.CPU.FULimits = &cpu.FULimits{Int: 2, FP: 2, Mem: 1} },
		"l1 bytes":    func(c *sim.Config) { c.Memory.L1.Bytes = 64 << 10 },
		"l1 hit":      func(c *sim.Config) { c.Memory.L1.HitCycles = 3 },
		"l1 assoc":    func(c *sim.Config) { c.Memory.L1.Assoc = 4 },
		"ports kind":  func(c *sim.Config) { c.Memory.L1.Ports = mem.PortConfig{Kind: mem.BankedPorts, Count: 8} },
		"ports count": func(c *sim.Config) { c.Memory.L1.Ports = mem.PortConfig{Kind: mem.IdealPorts, Count: 2} },
		"interleave": func(c *sim.Config) {
			c.Memory.L1.Ports = mem.PortConfig{Kind: mem.BankedPorts, Count: 8, InterleaveBytes: 8}
		},
		"mshrs":        func(c *sim.Config) { c.Memory.L1.MSHRs = 8 },
		"write policy": func(c *sim.Config) { c.Memory.L1.Policy = mem.WriteThrough },
		"sectoring":    func(c *sim.Config) { c.Memory.L1.SectorBytes = 32 },
		"victim cache": func(c *sim.Config) { c.Memory.L1.VictimCache = true },
		"line buffer":  func(c *sim.Config) { c.Memory.L1.LineBuffer = false },
		"lb entries":   func(c *sim.Config) { c.Memory.L1.LineBufferEntries = 64 },
		"no l2":        func(c *sim.Config) { c.Memory.L2 = nil },
		"l2 hit":       func(c *sim.Config) { l2 := mem.DefaultL2Config(20); c.Memory.L2 = &l2 },
		"dram":         func(c *sim.Config) { d := mem.DefaultDRAMConfig(6); c.Memory.DRAM = &d },
		"mem latency":  func(c *sim.Config) { c.Memory.MemoryLatencyCycles = 120 },
		"cycle ns":     func(c *sim.Config) { c.Memory.CycleNs = 2.5 },
		"chip bus":     func(c *sim.Config) { c.Memory.ChipBusGBs = 5 },
		"mem bus":      func(c *sim.Config) { c.Memory.MemBusGBs = 3.2 },
		"scaled system": func(c *sim.Config) {
			c.Memory = sim.ScaledSRAMSystem(32<<10, 1, mem.PortConfig{Kind: mem.DuplicatePorts}, true, 15)
		},
	}
	seen := map[string]string{mustKey(t, baseConfig()): "base"}
	for name, mutate := range variants {
		cfg := baseConfig()
		mutate(&cfg)
		k := mustKey(t, cfg)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

func TestCachePutGetRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	key := mustKey(t, cfg)
	want := sim.Result{Benchmark: "gcc", Cycles: 1234, Instructions: 1000, IPC: 0.81, MissesPerInst: 0.02}

	if _, ok := c.Get(key); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
	if err := c.Put(key, cfg, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get missed immediately after Put")
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1", n, err)
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	key := mustKey(t, cfg)
	if err := c.Put(key, cfg, sim.Result{IPC: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupt entry reported as a hit")
	}

	// An entry whose embedded key disagrees with its filename (e.g. a
	// file copied between cache dirs built with different key versions)
	// is also a miss.
	other := baseConfig()
	other.Seed = 99
	otherKey := mustKey(t, other)
	if err := c.Put(otherKey, other, sim.Result{IPC: 2}); err != nil {
		t.Fatal(err)
	}
	stolen, err := os.ReadFile(filepath.Join(dir, otherKey[:2], otherKey+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, stolen, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("entry with mismatched key reported as a hit")
	}
}

// TestCachePutAtomic is the regression test for atomic disk writes: a
// process killed mid-Put must never leave a torn entry where Get (or a
// resumed sweep) will find it. Put stages into a temp file and renames,
// so the visible path either has the old complete content or the new
// complete content, and staging files are invisible to Get and Len.
func TestCachePutAtomic(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	key := mustKey(t, cfg)

	// Simulate a crash mid-write: a staging file exists but the rename
	// never happened. Build it the same way Put does.
	if err := os.MkdirAll(filepath.Dir(c.path(key)), 0o755); err != nil {
		t.Fatal(err)
	}
	torn, err := os.CreateTemp(filepath.Dir(c.path(key)), key+".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := torn.WriteString(`{"Key":"` + key + `","Result":{"ipc":9`); err != nil {
		t.Fatal(err)
	}
	if err := torn.Close(); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(key); ok {
		t.Fatal("torn staging file visible as a cache hit")
	}
	if n, err := c.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v; torn staging file must not count as an entry", n, err)
	}

	// A subsequent Put of the same key succeeds and is complete.
	want := sim.Result{Benchmark: "gcc", IPC: 1.5}
	if err := c.Put(key, cfg, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || got != want {
		t.Fatalf("Get after recovery = %+v, %v; want %+v, true", got, ok, want)
	}

	// Put leaves no staging litter of its own behind.
	entries, err := os.ReadDir(filepath.Dir(c.path(key)))
	if err != nil {
		t.Fatal(err)
	}
	tmps := 0
	for _, e := range entries {
		if e.Name() != key+".json" && e.Name() != filepath.Base(torn.Name()) {
			tmps++
		}
	}
	if tmps != 0 {
		t.Errorf("Put left %d unexpected staging files behind", tmps)
	}

	// Overwriting an existing entry is also atomic: the key stays
	// readable with one of the two complete values throughout.
	if err := c.Put(key, cfg, sim.Result{Benchmark: "gcc", IPC: 2.5}); err != nil {
		t.Fatal(err)
	}
	got, ok = c.Get(key)
	if !ok || got.IPC != 2.5 {
		t.Errorf("Get after overwrite = %+v, %v; want IPC 2.5, true", got, ok)
	}
}

// TestCacheEntryStableJSON pins the on-disk encoding: entries store the
// snake_case wire format of sim.Result, so external tooling can read
// cache files without importing this module.
func TestCacheEntryStableJSON(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	key := mustKey(t, cfg)
	if err := c.Put(key, cfg, sim.Result{Benchmark: "gcc", IPC: 1.25, MissesPerInst: 0.5}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ipc": 1.25`, `"misses_per_inst": 0.5`, `"benchmark": "gcc"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("cache entry missing %s:\n%s", want, raw)
		}
	}
}
