package runner

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"hbcache/internal/sim"
)

// This file is the runner's lockstep-batch scheduling path
// (Options.BatchSize > 1): jobs that miss the memo and disk cache are
// sliced into batches of up to BatchSize and each batch runs as one
// sim.RunBatch on a pool worker. Provenance (memo, cache), metrics,
// retry semantics, and submission-order results are identical to the
// per-run path — only the execution grouping changes.

// batchJob is one submitted config's scheduling state on the batched
// path: its slot in the results slice, content key, and the memo entry
// this Run owns or joined.
type batchJob struct {
	idx   int
	cfg   sim.Config
	key   string
	entry *memoEntry
	start time.Time
}

// runBatched is Run for BatchSize > 1.
func (r *Runner) runBatched(ctx context.Context, cfgs []sim.Config) ([]JobResult, error) {
	results := make([]JobResult, len(cfgs))
	r.mu.Lock()
	r.metrics.Submitted += len(cfgs)
	r.mu.Unlock()

	// Claim or join a memo entry per job, in submission order so
	// duplicates within one sweep dedup exactly as on the per-run path.
	var owned, joined []*batchJob
	for i, cfg := range cfgs {
		jr := &results[i]
		jr.Config = cfg
		start := time.Now()
		if err := ctx.Err(); err != nil {
			jr.Err = err
			jr.Wall = time.Since(start)
			r.finish(jr)
			continue
		}
		key, err := Key(cfg)
		if err != nil {
			jr.Err = fmt.Errorf("runner: keying %s config: %w", cfg.Benchmark, err)
			jr.Wall = time.Since(start)
			r.finish(jr)
			continue
		}
		r.mu.Lock()
		entry, inFlight := r.memo[key]
		if !inFlight {
			entry = &memoEntry{done: make(chan struct{})}
			r.memo[key] = entry
		}
		r.mu.Unlock()
		job := &batchJob{idx: i, cfg: cfg, key: key, entry: entry, start: start}
		if inFlight {
			joined = append(joined, job)
		} else {
			owned = append(owned, job)
		}
	}

	// Slice owned jobs into batches and fan the batches across the
	// pool. Submission order is preserved within and across batches, so
	// a sweep's natural benchmark grouping keeps lanes shareable.
	var batches [][]*batchJob
	for rest := owned; len(rest) > 0; {
		n := r.batch
		if n > len(rest) {
			n = len(rest)
		}
		batches = append(batches, rest[:n])
		rest = rest[n:]
	}
	workers := r.workers
	if workers > len(batches) {
		workers = len(batches)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range idx {
				r.doBatch(ctx, batches[bi], results)
			}
		}()
	}
dispatch:
	for bi := range batches {
		select {
		case idx <- bi:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	// Batches the dispatcher never handed out: settle their jobs as
	// cancelled and publish their memo entries so no duplicate waits
	// forever on an execution that will not happen.
	for _, job := range owned {
		select {
		case <-job.entry.done:
		default:
			job.entry.err = ctx.Err()
			close(job.entry.done)
			jr := &results[job.idx]
			jr.Err = job.entry.err
			jr.Wall = time.Since(job.start)
			r.finish(jr)
		}
	}
	// Duplicates: their execution is finished (above or in another
	// concurrent Run), or ctx is gone.
	for _, job := range joined {
		jr := &results[job.idx]
		select {
		case <-job.entry.done:
			jr.Result, jr.Err = job.entry.res, job.entry.err
			jr.MemoHit = true
		case <-ctx.Done():
			jr.Err = ctx.Err()
		}
		jr.Wall = time.Since(job.start)
		r.finish(jr)
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// doBatch produces the results of one batch: disk-cache lookups first,
// then a single lockstep sim.RunBatch over the misses, with per-lane
// fallback to per-run retries for retryable failures. Every job's memo
// entry is published exactly once.
func (r *Runner) doBatch(ctx context.Context, jobs []*batchJob, results []JobResult) {
	var runJobs []*batchJob
	for _, job := range jobs {
		jr := &results[job.idx]
		if r.store != nil {
			if res, ok := r.store.Get(job.key); ok {
				job.entry.res = res
				close(job.entry.done)
				jr.Result, jr.CacheHit = res, true
				jr.Wall = time.Since(job.start)
				r.finish(jr)
				continue
			}
		}
		runJobs = append(runJobs, job)
	}
	if len(runJobs) == 0 {
		return
	}

	batchCfgs := make([]sim.Config, len(runJobs))
	for i, job := range runJobs {
		batchCfgs[i] = job.cfg
	}
	res, errs := r.simulateBatch(ctx, batchCfgs)
	for i, job := range runJobs {
		jr := &results[job.idx]
		jr.Attempts = 1
		laneRes, laneErr := res[i], errs[i]
		if laneErr != nil && Retryable(laneErr) && r.retries > 0 {
			laneRes, laneErr = r.retrySingle(ctx, job.cfg, jr, laneErr)
		}
		if laneErr != nil {
			job.entry.err = fmt.Errorf("runner: %s: %w", job.cfg.Benchmark, laneErr)
			jr.Err = job.entry.err
		} else {
			job.entry.res = laneRes
			jr.Result = laneRes
			if r.store != nil {
				// Same checkpoint-before-report discipline as the
				// per-run path; a store write failure is not a job
				// failure.
				_ = r.store.Put(job.key, job.cfg, laneRes)
			}
		}
		close(job.entry.done)
		jr.Wall = time.Since(job.start)
		r.finish(jr)
	}
}

// simulateBatch runs one lockstep batch, converting a panic into one
// error per lane exactly as simulate does per run; the lanes then take
// the per-run retry path, which isolates a genuinely poisonous config
// to its own job.
func (r *Runner) simulateBatch(ctx context.Context, cfgs []sim.Config) (res []sim.Result, errs []error) {
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("simulation panicked: %v\n%s", p, debug.Stack())
			res = make([]sim.Result, len(cfgs))
			errs = make([]error, len(cfgs))
			for i := range errs {
				errs[i] = err
			}
		}
	}()
	return sim.RunBatch(ctx, cfgs, r.runOpts)
}

// retrySingle re-runs one lane on the per-run simulator after a
// retryable batch failure, honoring the runner's retry budget and
// backoff. It returns the first success or the last error.
func (r *Runner) retrySingle(ctx context.Context, cfg sim.Config, jr *JobResult, prev error) (sim.Result, error) {
	err := prev
	for attempt := 1; attempt <= r.retries && Retryable(err); attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return sim.Result{}, cerr
		}
		r.mu.Lock()
		r.metrics.Retries++
		r.mu.Unlock()
		if !r.sleepBackoff(ctx, attempt-1) {
			return sim.Result{}, ctx.Err()
		}
		jr.Attempts++
		var res sim.Result
		if res, err = r.simulate(ctx, cfg); err == nil {
			return res, nil
		}
	}
	return sim.Result{}, err
}
