package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"hbcache/internal/fault"
	"hbcache/internal/sim"
)

// putEntry PUTs e raw (no client-side resealing) and returns the
// response body and response.
func putEntry(t *testing.T, base, key string, e StoreEntry) (string, *http.Response) {
	t.Helper()
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/store/"+key, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body), resp
}

func writeEntryJSON(t *testing.T, w http.ResponseWriter, e StoreEntry) {
	t.Helper()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(e); err != nil {
		t.Error(err)
	}
}

// storeKey makes a well-formed (64 hex char) key with a recognizable
// prefix, so disk sharding by key[:2] works like production keys.
func storeKey(b byte) string {
	k := make([]byte, 64)
	for i := range k {
		k[i] = "0123456789abcdef"[b%16]
	}
	k[63] = "0123456789abcdef"[(b/16)%16]
	return string(k)
}

func storeResult(i int) sim.Result {
	return sim.Result{Benchmark: "gcc", Cycles: uint64(1000 + i), Instructions: 500, IPC: float64(i) / 2}
}

// newRemoteTestStore builds a RemoteStore talking to a StoreServer over
// a real HTTP listener, backed by a fresh MemStore.
func newRemoteTestStore(t *testing.T) Store {
	t.Helper()
	srv := NewStoreServer(NewMemStore())
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return NewRemoteStore(ts.URL, ts.Client(), nil)
}

// TestStoreContract runs the shared Store semantics against every
// backend: disk, in-memory, and HTTP/remote. Get/Put/Keys/Corrupt
// behavior must be interchangeable — the runner and the cluster pick a
// backend by flag, not by code path.
func TestStoreContract(t *testing.T) {
	backends := []struct {
		name string
		mk   func(t *testing.T) Store
	}{
		{"disk", func(t *testing.T) Store {
			c, err := NewCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"mem", func(t *testing.T) Store { return NewMemStore() }},
		{"remote", newRemoteTestStore},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			t.Run("MissOnAbsent", func(t *testing.T) {
				s := be.mk(t)
				if _, ok := s.Get(storeKey(1)); ok {
					t.Error("Get on empty store reported a hit")
				}
				if n := s.CorruptEntries(); n != 0 {
					t.Errorf("CorruptEntries on empty store = %d, want 0", n)
				}
			})
			t.Run("PutGetRoundtrip", func(t *testing.T) {
				s := be.mk(t)
				cfg := stubConfig(3)
				want := storeResult(3)
				if err := s.Put(storeKey(2), cfg, want); err != nil {
					t.Fatal(err)
				}
				got, ok := s.Get(storeKey(2))
				if !ok {
					t.Fatal("Get after Put missed")
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("Get = %+v, want %+v", got, want)
				}
				// A different key is still a miss.
				if _, ok := s.Get(storeKey(3)); ok {
					t.Error("Get of a never-Put key hit")
				}
			})
			t.Run("OverwriteLastWins", func(t *testing.T) {
				s := be.mk(t)
				k := storeKey(4)
				if err := s.Put(k, stubConfig(1), storeResult(1)); err != nil {
					t.Fatal(err)
				}
				if err := s.Put(k, stubConfig(1), storeResult(9)); err != nil {
					t.Fatal(err)
				}
				got, ok := s.Get(k)
				if !ok || got.Cycles != storeResult(9).Cycles {
					t.Errorf("Get after overwrite = %+v ok=%v, want the second Put", got, ok)
				}
			})
			t.Run("KeysListsAll", func(t *testing.T) {
				s := be.mk(t)
				want := []string{storeKey(5), storeKey(6), storeKey(7)}
				for i, k := range want {
					if err := s.Put(k, stubConfig(i), storeResult(i)); err != nil {
						t.Fatal(err)
					}
				}
				got, err := s.Keys()
				if err != nil {
					t.Fatal(err)
				}
				sort.Strings(got)
				sort.Strings(want)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("Keys = %v, want %v", got, want)
				}
			})
		})
	}
}

// TestRemoteStoreVerification pins the checksum discipline on both
// sides of the wire: the server rejects uploads that fail
// verification, and the client refuses to serve a mangled response.
func TestRemoteStoreVerification(t *testing.T) {
	backing := NewMemStore()
	srv := NewStoreServer(backing)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	t.Run("ServerRejectsBadChecksum", func(t *testing.T) {
		// A PUT whose body was mangled in flight: seal, then corrupt.
		// The raw HTTP path is used so the client's own sealing cannot
		// hide the tamper.
		e := StoreEntry{Key: storeKey(8), Config: stubConfig(1), Result: storeResult(1)}
		e.Seal()
		e.Result.Cycles++ // tamper after sealing
		body, resp := putEntry(t, ts.URL, storeKey(8), e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("tampered PUT = %d (%s), want 400", resp.StatusCode, body)
		}
		if backing.Len() != 0 {
			t.Error("tampered entry landed in the backing store")
		}
		if st := srv.Stats(); st.Rejects != 1 {
			t.Errorf("server Rejects = %d, want 1", st.Rejects)
		}
	})

	t.Run("ServerRejectsKeyMismatch", func(t *testing.T) {
		e := StoreEntry{Key: storeKey(9), Config: stubConfig(1), Result: storeResult(1)}
		e.Seal()
		body, resp := putEntry(t, ts.URL, storeKey(10), e) // URL key ≠ entry key
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("key-mismatched PUT = %d (%s), want 400", resp.StatusCode, body)
		}
	})

	t.Run("ClientCountsCorruptResponses", func(t *testing.T) {
		// A server that returns a mangled entry for any key.
		bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			e := StoreEntry{Key: r.PathValue("key"), Result: storeResult(1)}
			e.Seal()
			e.Result.Cycles++ // tamper after sealing
			writeEntryJSON(t, w, e)
		}))
		defer bad.Close()
		rs := NewRemoteStore(bad.URL, bad.Client(), nil)
		if _, ok := rs.Get(storeKey(11)); ok {
			t.Error("mangled entry was served as a hit")
		}
		if got := rs.CorruptEntries(); got != 1 {
			t.Errorf("CorruptEntries = %d, want 1", got)
		}
		if st := rs.Stats(); st.Gets != 1 || st.Hits != 0 {
			t.Errorf("Stats = %+v, want 1 get, 0 hits", st)
		}
	})
}

// TestRemoteStoreFaultSites pins the chaos behavior: an injected get
// error is a miss, an injected put error drops the write.
func TestRemoteStoreFaultSites(t *testing.T) {
	backing := NewMemStore()
	srv := NewStoreServer(backing)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	reg := fault.New(1).Add(
		fault.Rule{Site: fault.SiteStoreRemoteGet, Kind: fault.KindError, Limit: 1},
		fault.Rule{Site: fault.SiteStoreRemotePut, Kind: fault.KindError, Limit: 1},
	)
	rs := NewRemoteStore(ts.URL, ts.Client(), reg)

	if err := rs.Put(storeKey(12), stubConfig(1), storeResult(1)); err == nil {
		t.Error("Put with an armed put fault succeeded, want injected error")
	}
	if backing.Len() != 0 {
		t.Error("faulted Put still reached the server")
	}
	// Second put: fault exhausted, goes through.
	if err := rs.Put(storeKey(12), stubConfig(1), storeResult(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Get(storeKey(12)); ok {
		t.Error("Get with an armed get fault hit, want miss")
	}
	if _, ok := rs.Get(storeKey(12)); !ok {
		t.Error("Get after fault exhausted missed, want hit")
	}
}

// TestRunnerWithRemoteStore runs the runner end to end against a remote
// store: the first runner simulates and uploads, a second runner (a
// different "worker") is served from the shared store without
// simulating — the cluster-wide dedup primitive.
func TestRunnerWithRemoteStore(t *testing.T) {
	srv := NewStoreServer(NewMemStore())
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	mk := func() (*Runner, *atomic.Int64) {
		var sims atomic.Int64
		r, err := New(Options{
			Workers: 2,
			Store:   NewRemoteStore(ts.URL, ts.Client(), nil),
			Sim:     countingSim(&sims),
		})
		if err != nil {
			t.Fatal(err)
		}
		return r, &sims
	}
	r1, sims1 := mk()
	jr := r1.RunJob(context.Background(), stubConfig(1))
	if jr.Err != nil || jr.CacheHit || sims1.Load() != 1 {
		t.Fatalf("first worker: %+v sims=%d, want one fresh simulation", jr, sims1.Load())
	}

	r2, sims2 := mk()
	jr2 := r2.RunJob(context.Background(), stubConfig(1))
	if jr2.Err != nil || !jr2.CacheHit || sims2.Load() != 0 {
		t.Fatalf("second worker: %+v sims=%d, want a shared-store hit and zero simulations", jr2, sims2.Load())
	}
	if !reflect.DeepEqual(jr.Result, jr2.Result) {
		t.Errorf("results differ across workers: %+v vs %+v", jr.Result, jr2.Result)
	}
	if st := srv.Stats(); st.Puts != 1 || st.Hits != 1 {
		t.Errorf("server stats = %+v, want exactly one put and one served hit", st)
	}
}
