package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"

	"hbcache/internal/sim"
)

// Store is the pluggable result-store seam: a content-addressed map
// from the runner's canonical config key to a finished simulation
// result. The disk Cache, the in-memory MemStore, and the HTTP
// RemoteStore all implement it, so a runner can checkpoint against a
// local directory, a test fixture, or a coordinator shared by a whole
// worker fleet without knowing the difference.
//
// Semantics every backend preserves:
//
//   - Get is a lookup, never an error: a missing, unreachable, or
//     corrupt entry is a miss, and a miss only costs a re-simulation.
//   - Put is durable on success and atomic with respect to Get — a
//     reader never observes a half-written entry.
//   - Keys lists every stored key (order unspecified) for resume
//     tooling and tests.
//   - CorruptEntries counts entries that failed their integrity check
//     and were quarantined or rejected; corrupt bytes are never served.
type Store interface {
	Get(key string) (sim.Result, bool)
	Put(key string, cfg sim.Config, res sim.Result) error
	Keys() ([]string, error)
	CorruptEntries() int64
}

// StoreEntry is the wire and on-disk record shared by every Store
// backend. The config rides along purely for debuggability — `cat` a
// cache file (or GET a store URL) and see what produced it. Sum is the
// hex SHA-256 of the entry's compact JSON encoding with Sum itself
// blank, so torn writes, bit rot, and mangled uploads are detected
// instead of silently served. Field names are part of the format;
// existing v3 disk caches parse unchanged.
type StoreEntry struct {
	Key    string
	Config sim.Config
	Result sim.Result
	Sum    string
}

// sum returns the entry's checksum: the hex SHA-256 of its compact JSON
// encoding with the Sum field cleared.
func (e StoreEntry) sum() string {
	e.Sum = ""
	b, err := json.Marshal(e)
	if err != nil {
		// sim types marshal without error by construction; a failure here
		// yields a value no stored Sum matches, so the entry quarantines.
		return "unmarshalable"
	}
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// Seal stamps the entry's checksum over its current contents.
func (e *StoreEntry) Seal() { e.Sum = e.sum() }

// Verify reports whether the entry is internally consistent: its Sum
// matches its contents and its Key matches key.
func (e StoreEntry) Verify(key string) bool {
	return e.Key == key && e.Sum == e.sum()
}

// MemStore is an in-memory Store: a mutex-guarded map. It backs tests,
// ephemeral coordinators that only need fleet-wide dedup for the life
// of the process, and the remote store's server side when no disk is
// wanted. Entries cannot rot in memory, so CorruptEntries is always 0.
type MemStore struct {
	mu      sync.RWMutex
	entries map[string]StoreEntry
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{entries: map[string]StoreEntry{}}
}

// Get returns the stored result for key, if present.
func (m *MemStore) Get(key string) (sim.Result, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[key]
	return e.Result, ok
}

// Put stores a result under key, replacing any previous entry.
func (m *MemStore) Put(key string, cfg sim.Config, res sim.Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key] = StoreEntry{Key: key, Config: cfg, Result: res}
	return nil
}

// Keys lists the stored keys, sorted for deterministic output.
func (m *MemStore) Keys() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// CorruptEntries is always 0: memory does not rot.
func (m *MemStore) CorruptEntries() int64 { return 0 }

// Len reports the number of stored entries, for tests and tooling.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}
