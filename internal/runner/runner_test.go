package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hbcache/internal/cpu"
	"hbcache/internal/mem"
	"hbcache/internal/sim"
)

// stubConfig builds a distinct, valid config per index so stub sim
// functions can derive deterministic results from it.
func stubConfig(i int) sim.Config {
	return sim.Config{
		Benchmark:    "gcc",
		Seed:         uint64(i + 1),
		CPU:          cpu.DefaultConfig(),
		Memory:       mem.DefaultSRAMSystem(32<<10, 1, mem.PortConfig{Kind: mem.DuplicatePorts}, true),
		MeasureInsts: 1000,
	}
}

func stubConfigs(n int) []sim.Config {
	cfgs := make([]sim.Config, n)
	for i := range cfgs {
		cfgs[i] = stubConfig(i)
	}
	return cfgs
}

// stubSim returns a result derived only from the config, so any
// execution order must produce the same output.
func stubSim(_ context.Context, cfg sim.Config) (sim.Result, error) {
	return sim.Result{Benchmark: cfg.Benchmark, Cycles: cfg.Seed * 10, IPC: float64(cfg.Seed)}, nil
}

func newTest(t *testing.T, opts Options) *Runner {
	t.Helper()
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = -1 // keep retry tests fast
	}
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	r.sim = stubSim
	return r
}

func TestRunOrderedAcrossWorkerCounts(t *testing.T) {
	cfgs := stubConfigs(32)
	var want []JobResult
	for _, workers := range []int{1, 4, 16} {
		r := newTest(t, Options{Workers: workers})
		// Jitter completion order so ordering bugs cannot hide behind a
		// fast deterministic stub.
		r.sim = func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
			time.Sleep(time.Duration(cfg.Seed%5) * time.Millisecond)
			return stubSim(ctx, cfg)
		}
		got, err := r.Run(context.Background(), cfgs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, jr := range got {
			if jr.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, jr.Err)
			}
			if jr.Result.IPC != float64(i+1) {
				t.Errorf("workers=%d job %d: IPC = %v, want %v (out of order?)", workers, i, jr.Result.IPC, i+1)
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i].Result != want[i].Result {
				t.Errorf("workers=%d job %d: result differs from workers=1", workers, i)
			}
		}
	}
}

func TestRealSimParallelMatchesSerial(t *testing.T) {
	small := func(bench string, hit int) sim.Config {
		return sim.Config{
			Benchmark:    bench,
			Seed:         1,
			CPU:          cpu.DefaultConfig(),
			Memory:       mem.DefaultSRAMSystem(8<<10, hit, mem.PortConfig{Kind: mem.DuplicatePorts}, true),
			PrewarmInsts: 2000,
			WarmupInsts:  500,
			MeasureInsts: 3000,
		}
	}
	cfgs := []sim.Config{small("gcc", 1), small("tomcatv", 1), small("gcc", 2), small("compress", 1)}

	serial, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rs1, err := serial.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	rs8, err := parallel.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if rs1[i].Err != nil || rs8[i].Err != nil {
			t.Fatalf("job %d errs: %v / %v", i, rs1[i].Err, rs8[i].Err)
		}
		if rs1[i].Result != rs8[i].Result {
			t.Errorf("job %d: serial and parallel results differ:\n  -j1: %+v\n  -j8: %+v", i, rs1[i].Result, rs8[i].Result)
		}
	}
}

func TestMemoDedupWithinBatch(t *testing.T) {
	var calls atomic.Int64
	r := newTest(t, Options{Workers: 4})
	r.sim = func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		time.Sleep(2 * time.Millisecond)
		return stubSim(ctx, cfg)
	}
	cfgs := make([]sim.Config, 12)
	for i := range cfgs {
		cfgs[i] = stubConfig(i % 3) // each distinct point appears 4 times
	}
	rs, err := r.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range rs {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if want := float64(i%3 + 1); jr.Result.IPC != want {
			t.Errorf("job %d: IPC = %v, want %v", i, jr.Result.IPC, want)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("simulator ran %d times, want 3 (memo dedup)", got)
	}
	m := r.Metrics()
	if m.Simulated != 3 || m.MemoHits != 9 || m.Done != 12 {
		t.Errorf("metrics = %+v, want Simulated 3, MemoHits 9, Done 12", m)
	}
}

func TestMemoDedupAcrossBatches(t *testing.T) {
	var calls atomic.Int64
	r := newTest(t, Options{Workers: 2})
	r.sim = func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubSim(ctx, cfg)
	}
	cfgs := stubConfigs(4)
	if _, err := r.Run(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("simulator ran %d times across two identical batches, want 4", got)
	}
}

func TestDiskCacheAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	count := func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return stubSim(ctx, cfg)
	}
	cfgs := stubConfigs(5)

	first := newTest(t, Options{Workers: 2, CacheDir: dir})
	first.sim = count
	rs, err := first.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 {
		t.Fatalf("first run simulated %d, want 5", calls.Load())
	}

	second := newTest(t, Options{Workers: 2, CacheDir: dir})
	second.sim = count
	rs2, err := second.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 {
		t.Errorf("second run re-simulated (%d total calls), want cache hits", calls.Load())
	}
	m := second.Metrics()
	if m.CacheHits != 5 {
		t.Errorf("second run CacheHits = %d, want 5", m.CacheHits)
	}
	for i := range rs {
		if !rs2[i].CacheHit {
			t.Errorf("job %d: CacheHit = false on second run", i)
		}
		if rs[i].Result != rs2[i].Result {
			t.Errorf("job %d: cached result differs from simulated", i)
		}
	}
}

func TestPanicRecovered(t *testing.T) {
	r := newTest(t, Options{Workers: 2})
	r.sim = func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		if cfg.Seed == 2 {
			panic("bad design point")
		}
		return stubSim(ctx, cfg)
	}
	rs, err := r.Run(context.Background(), stubConfigs(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range rs {
		if i == 1 {
			if jr.Err == nil || !strings.Contains(jr.Err.Error(), "panicked") {
				t.Errorf("job 1: err = %v, want simulation panic surfaced", jr.Err)
			}
			continue
		}
		if jr.Err != nil {
			t.Errorf("job %d: %v (panic should not poison siblings)", i, jr.Err)
		}
	}
	if m := r.Metrics(); m.Errors != 1 {
		t.Errorf("Errors = %d, want 1", m.Errors)
	}
}

func TestBoundedRetry(t *testing.T) {
	var mu sync.Mutex
	failuresLeft := map[uint64]int{1: 2, 2: 5}
	r := newTest(t, Options{Workers: 1, Retries: 2})
	r.sim = func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		mu.Lock()
		defer mu.Unlock()
		if failuresLeft[cfg.Seed] > 0 {
			failuresLeft[cfg.Seed]--
			return sim.Result{}, fmt.Errorf("transient %d", cfg.Seed)
		}
		return stubSim(ctx, cfg)
	}
	rs, err := r.Run(context.Background(), stubConfigs(2))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil || rs[0].Attempts != 3 {
		t.Errorf("job 0: err=%v attempts=%d, want success on third attempt", rs[0].Err, rs[0].Attempts)
	}
	if rs[1].Err == nil || rs[1].Attempts != 3 {
		t.Errorf("job 1: err=%v attempts=%d, want failure after retries exhausted", rs[1].Err, rs[1].Attempts)
	}
	if m := r.Metrics(); m.Retries != 4 {
		t.Errorf("Retries = %d, want 4", m.Retries)
	}
}

func TestCancellationDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := newTest(t, Options{Workers: 1})
	r.sim = func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		if cfg.Seed == 1 {
			cancel() // cancel while the first job is in flight
		}
		return stubSim(ctx, cfg)
	}
	rs, err := r.Run(ctx, stubConfigs(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if rs[0].Err != nil {
		t.Errorf("job 0 completed before cancel but has err %v", rs[0].Err)
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(rs[i].Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, rs[i].Err)
		}
	}
	if m := r.Metrics(); m.Done != 3 {
		t.Errorf("Done = %d, want every slot accounted for", m.Done)
	}
}

func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var snaps []Metrics
	r, err := New(Options{Workers: 3, OnProgress: func(m Metrics) {
		mu.Lock()
		snaps = append(snaps, m)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	r.sim = stubSim
	if _, err := r.Run(context.Background(), stubConfigs(7)); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 7 {
		t.Fatalf("progress fired %d times, want 7", len(snaps))
	}
	for i, m := range snaps {
		if m.Done != i+1 {
			t.Errorf("snapshot %d: Done = %d, want %d (monotonic)", i, m.Done, i+1)
		}
		if m.Submitted != 7 {
			t.Errorf("snapshot %d: Submitted = %d, want 7", i, m.Submitted)
		}
	}
}

func TestRunOneAndResults(t *testing.T) {
	r := newTest(t, Options{Workers: 2})
	res, err := r.RunOne(context.Background(), stubConfig(0))
	if err != nil || res.IPC != 1 {
		t.Fatalf("RunOne = %+v, %v", res, err)
	}

	boom := errors.New("boom")
	jrs := []JobResult{{Result: sim.Result{IPC: 1}}, {Err: boom}}
	if _, err := Results(jrs); !errors.Is(err, boom) {
		t.Errorf("Results err = %v, want boom", err)
	}
	ok, err := Results(jrs[:1])
	if err != nil || len(ok) != 1 || ok[0].IPC != 1 {
		t.Errorf("Results = %v, %v", ok, err)
	}
}

func TestParallelHelper(t *testing.T) {
	out := make([]int, 50)
	err := Parallel(context.Background(), 8, len(out), func(i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}

	boom := errors.New("boom")
	var ran atomic.Int64
	err = Parallel(context.Background(), 2, 100, func(i int) error {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Parallel err = %v, want boom", err)
	}
	if n := ran.Load(); n == 100 {
		t.Errorf("error did not stop dispatch (all %d jobs ran)", n)
	}
}

// TestAddListener verifies the hook API the HTTP service subscribes to:
// snapshots arrive serialized in non-decreasing Done order, alongside
// (not instead of) OnProgress, and removal stops delivery.
func TestAddListener(t *testing.T) {
	var onProgress atomic.Int64
	r := newTest(t, Options{Workers: 8, OnProgress: func(Metrics) { onProgress.Add(1) }})

	var mu sync.Mutex
	var seen []int
	remove := r.AddListener(func(m Metrics) {
		mu.Lock()
		seen = append(seen, m.Done)
		mu.Unlock()
	})

	if _, err := r.Run(context.Background(), stubConfigs(16)); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	got := append([]int(nil), seen...)
	mu.Unlock()
	if len(got) != 16 {
		t.Fatalf("listener saw %d snapshots, want 16", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("snapshots out of order: Done went %d -> %d", got[i-1], got[i])
		}
	}
	if got[len(got)-1] != 16 {
		t.Errorf("final snapshot Done = %d, want 16", got[len(got)-1])
	}
	if onProgress.Load() != 16 {
		t.Errorf("OnProgress fired %d times, want 16", onProgress.Load())
	}

	remove()
	if _, err := r.RunOne(context.Background(), stubConfig(99)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	after := len(seen)
	mu.Unlock()
	if after != 16 {
		t.Errorf("removed listener still saw %d snapshots, want 16", after)
	}
}

// TestRunJobProvenance checks the exported single-job API reports
// cache/memo provenance the way Run's batch results do.
func TestRunJobProvenance(t *testing.T) {
	var sims atomic.Int64
	r, err := New(Options{Workers: 2, CacheDir: t.TempDir(), Sim: func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		sims.Add(1)
		return stubSim(ctx, cfg)
	}})
	if err != nil {
		t.Fatal(err)
	}

	jr := r.RunJob(context.Background(), stubConfig(1))
	if jr.Err != nil || jr.CacheHit || jr.MemoHit || jr.Attempts != 1 {
		t.Fatalf("first RunJob = %+v, want one fresh simulation", jr)
	}

	// Same process, same config: the memo answers.
	jr = r.RunJob(context.Background(), stubConfig(1))
	if jr.Err != nil || !jr.MemoHit {
		t.Fatalf("second RunJob = %+v, want memo hit", jr)
	}

	// A new runner over the same cache dir: the disk answers.
	r2, err := New(Options{Workers: 2, CacheDir: r.store.(*Cache).dir, Sim: func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
		t.Error("disk-cached job re-simulated")
		return stubSim(ctx, cfg)
	}})
	if err != nil {
		t.Fatal(err)
	}
	jr = r2.RunJob(context.Background(), stubConfig(1))
	if jr.Err != nil || !jr.CacheHit {
		t.Fatalf("RunJob on fresh runner = %+v, want disk cache hit", jr)
	}
	if sims.Load() != 1 {
		t.Errorf("simulated %d times across runners, want 1", sims.Load())
	}
}
