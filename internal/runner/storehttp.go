package runner

import (
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
)

// StoreServerStats is a snapshot of a StoreServer's counters — the
// server-side view of fleet-wide dedup (Hits are lookups the fleet did
// not have to re-simulate).
type StoreServerStats struct {
	Gets    int64 `json:"gets"`    // lookups received
	Hits    int64 `json:"hits"`    // lookups answered from the store
	Puts    int64 `json:"puts"`    // uploads accepted
	Rejects int64 `json:"rejects"` // uploads refused (bad key, failed checksum)
}

// StoreServer exposes a Store over HTTP — the server half of
// RemoteStore. The coordinator mounts it so its store becomes the
// fleet's shared result space:
//
//	GET /v1/store/{key}   sealed entry, or 404
//	PUT /v1/store/{key}   sealed entry in the body; checksum re-verified
//	GET /v1/store         {"keys": [...]}
//
// Uploads are verified before they are accepted: an entry whose key
// does not match the URL or whose checksum does not match its contents
// is rejected with 400 (and counted), so one worker with a flaky NIC
// cannot poison the fleet's shared results.
type StoreServer struct {
	store Store

	gets    atomic.Int64
	hits    atomic.Int64
	puts    atomic.Int64
	rejects atomic.Int64
}

// NewStoreServer serves s over HTTP.
func NewStoreServer(s Store) *StoreServer { return &StoreServer{store: s} }

// Stats returns a snapshot of the server-side counters.
func (s *StoreServer) Stats() StoreServerStats {
	return StoreServerStats{
		Gets:    s.gets.Load(),
		Hits:    s.hits.Load(),
		Puts:    s.puts.Load(),
		Rejects: s.rejects.Load(),
	}
}

// Register mounts the store routes on mux.
func (s *StoreServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/store/{key}", s.handleGet)
	mux.HandleFunc("PUT /v1/store/{key}", s.handlePut)
	mux.HandleFunc("GET /v1/store", s.handleKeys)
}

func (s *StoreServer) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.gets.Add(1)
	res, ok := s.store.Get(key)
	if !ok {
		http.Error(w, "no entry for key", http.StatusNotFound)
		return
	}
	s.hits.Add(1)
	// Re-seal on the way out: the backing store returns only the result
	// (its own integrity checks already ran), so the wire entry's
	// checksum covers exactly what this response carries.
	e := StoreEntry{Key: key, Result: res}
	e.Seal()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(e)
}

func (s *StoreServer) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var e StoreEntry
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22)).Decode(&e); err != nil {
		s.rejects.Add(1)
		http.Error(w, "undecodable entry: "+err.Error(), http.StatusBadRequest)
		return
	}
	io.Copy(io.Discard, r.Body)
	if !e.Verify(key) {
		s.rejects.Add(1)
		http.Error(w, "entry failed key/checksum verification", http.StatusBadRequest)
		return
	}
	if err := s.store.Put(key, e.Config, e.Result); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.puts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *StoreServer) handleKeys(w http.ResponseWriter, r *http.Request) {
	keys, err := s.store.Keys()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string][]string{"keys": keys})
}
