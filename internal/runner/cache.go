package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"hbcache/internal/fault"
	"hbcache/internal/sim"
)

// keyVersion tags the canonical encoding. Bump it whenever the meaning
// of a sim.Config field or the simulator's interpretation of one
// changes, so stale cached results from older binaries never resurface.
// v2: sim.Config and everything it embeds gained stable snake_case
// JSON names and textual port-kind/write-policy enums, changing the
// canonical encoding (and the stored Result encoding) wholesale.
// v3: prewarm_mode was added and its default (fast-forward) trains the
// branch predictor during prewarm, shifting IPC slightly; results
// cached under v2 were produced with the cold-predictor stream prewarm.
// v4: trace-backed workloads (sim.Config.Trace) joined the canonical
// encoding by content digest only — the location-specific path is
// dropped, so the same recording cached from any path or worker hits,
// and two different recordings can never alias however they are
// addressed on disk.
const keyVersion = "hbcache-job-v4"

// keyEnvelope is what gets hashed: the version string plus the
// canonicalized config. sim.Config and everything it embeds are plain
// structs (no maps), so encoding/json emits fields in declaration order
// and the encoding is deterministic.
type keyEnvelope struct {
	Version string
	Config  sim.Config
}

// Canonical normalizes a config so different spellings of the same
// simulation share one cache entry: zero instruction windows become the
// defaults sim.Run would substitute anyway, and a trace reference is
// reduced to its content digest — the path only says where the bytes
// happened to live when the job was submitted.
func Canonical(cfg sim.Config) sim.Config {
	cfg = cfg.WithDefaults()
	if cfg.Trace != nil {
		cfg.Trace = &sim.TraceRef{Digest: cfg.Trace.Digest}
	}
	return cfg
}

// Key returns the content address of a simulation: the hex SHA-256 of
// the canonical encoding of its config. Configs that simulate
// identically map to the same key; any behavior-relevant field change
// maps to a different one. A trace-backed config must carry the
// trace's content digest — keying a path-only ref would let whatever
// bytes later occupy that path impersonate the cached result.
func Key(cfg sim.Config) (string, error) {
	if cfg.Trace != nil && cfg.Trace.Digest == "" {
		return "", fmt.Errorf("runner: trace ref has no content digest (path %q): resolve it before keying", cfg.Trace.Path)
	}
	b, err := json.Marshal(keyEnvelope{Version: keyVersion, Config: Canonical(cfg)})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Cache is the on-disk Store backend: a content-addressed store of
// simulation results, one JSON file per key, sharded by the key's
// first byte to keep directories small on big sweeps.
type Cache struct {
	dir string
	// faults, when non-nil, injects read/write errors and corrupted
	// bytes at the cache's fault sites for chaos testing.
	faults *fault.Registry
	// corrupt counts entries quarantined because they failed the
	// key or checksum verification in Get.
	corrupt atomic.Int64
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: creating cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// CorruptEntries reports how many corrupt entries this cache has
// quarantined since it was opened.
func (c *Cache) CorruptEntries() int64 { return c.corrupt.Load() }

// quarantine renames a corrupt entry to <name>.corrupt — out of Get's
// path and Len's count, preserved for postmortem — and counts it. The
// next Get is a clean miss, so the result is recomputed exactly once
// rather than re-parsed (and re-failed) every run. If the rename fails
// the file is removed outright; a corrupt entry must never survive
// where Get will find it again.
func (c *Cache) quarantine(p string) {
	c.corrupt.Add(1)
	if err := os.Rename(p, p+".corrupt"); err != nil {
		os.Remove(p)
	}
}

// Get returns the cached result for key, if present and intact. A
// missing file is a plain miss. A file that exists but fails to parse,
// carries the wrong key, or fails its checksum is quarantined (renamed
// *.corrupt, counted in CorruptEntries) and reported as a miss, so the
// simulation re-runs once and the bad bytes are kept for inspection.
// Entries from before checksums existed carry no Sum and quarantine the
// same way — re-deriving them is deterministic and cheap compared to
// trusting unverifiable bytes.
func (c *Cache) Get(key string) (sim.Result, bool) {
	// Cache sites have no caller context (hangs are unsupported here —
	// see fault.SiteCacheRead); injected errors behave as I/O misses.
	if err := c.faults.Fire(context.Background(), fault.SiteCacheRead); err != nil {
		return sim.Result{}, false
	}
	p := c.path(key)
	b, err := os.ReadFile(p)
	if err != nil {
		return sim.Result{}, false
	}
	var e StoreEntry
	if err := json.Unmarshal(b, &e); err != nil || !e.Verify(key) {
		c.quarantine(p)
		return sim.Result{}, false
	}
	return e.Result, true
}

// Put stores a result under key, atomically: written to a temp file in
// the same directory and renamed into place, so a killed process never
// leaves a half-written entry where Get will find it.
func (c *Cache) Put(key string, cfg sim.Config, res sim.Result) error {
	if err := c.faults.Fire(context.Background(), fault.SiteCacheWrite); err != nil {
		return err
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	e := StoreEntry{Key: key, Config: cfg, Result: res}
	e.Seal()
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	// Chaos corruption happens after the checksum is computed, so the
	// file lands on disk genuinely self-inconsistent — exactly what a
	// torn write or bit rot produces.
	c.faults.Mangle(fault.SiteCacheBytes, b)
	tmp, err := os.CreateTemp(filepath.Dir(p), key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Len counts the entries currently stored, for tests and tooling.
// Quarantined *.corrupt files are not entries and are not counted.
func (c *Cache) Len() (int, error) {
	keys, err := c.Keys()
	return len(keys), err
}

// Keys lists every stored entry's key, sorted. Quarantined *.corrupt
// files are not entries and are not listed.
func (c *Cache) Keys() ([]string, error) {
	var keys []string
	err := filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			keys = append(keys, strings.TrimSuffix(filepath.Base(path), ".json"))
		}
		return nil
	})
	sort.Strings(keys)
	return keys, err
}
