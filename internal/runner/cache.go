package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hbcache/internal/sim"
)

// keyVersion tags the canonical encoding. Bump it whenever the meaning
// of a sim.Config field or the simulator's interpretation of one
// changes, so stale cached results from older binaries never resurface.
// v2: sim.Config and everything it embeds gained stable snake_case
// JSON names and textual port-kind/write-policy enums, changing the
// canonical encoding (and the stored Result encoding) wholesale.
// v3: prewarm_mode was added and its default (fast-forward) trains the
// branch predictor during prewarm, shifting IPC slightly; results
// cached under v2 were produced with the cold-predictor stream prewarm.
const keyVersion = "hbcache-job-v3"

// keyEnvelope is what gets hashed: the version string plus the
// canonicalized config. sim.Config and everything it embeds are plain
// structs (no maps), so encoding/json emits fields in declaration order
// and the encoding is deterministic.
type keyEnvelope struct {
	Version string
	Config  sim.Config
}

// Canonical normalizes a config so different spellings of the same
// simulation share one cache entry: zero instruction windows become the
// defaults sim.Run would substitute anyway.
func Canonical(cfg sim.Config) sim.Config {
	return cfg.WithDefaults()
}

// Key returns the content address of a simulation: the hex SHA-256 of
// the canonical encoding of its config. Configs that simulate
// identically map to the same key; any behavior-relevant field change
// maps to a different one.
func Key(cfg sim.Config) (string, error) {
	b, err := json.Marshal(keyEnvelope{Version: keyVersion, Config: Canonical(cfg)})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Cache is an on-disk, content-addressed store of simulation results:
// one JSON file per key, sharded by the key's first byte to keep
// directories small on big sweeps.
type Cache struct {
	dir string
}

// cacheEntry is the on-disk record. The config rides along purely for
// debuggability — `cat` a cache file and see what produced it.
type cacheEntry struct {
	Key    string
	Config sim.Config
	Result sim.Result
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: creating cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the cached result for key, if present and intact. Any
// unreadable or corrupt entry is treated as a miss — the simulation
// simply re-runs and overwrites it.
func (c *Cache) Get(key string) (sim.Result, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key {
		return sim.Result{}, false
	}
	return e.Result, true
}

// Put stores a result under key, atomically: written to a temp file in
// the same directory and renamed into place, so a killed process never
// leaves a half-written entry where Get will find it.
func (c *Cache) Put(key string, cfg sim.Config, res sim.Result) error {
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(cacheEntry{Key: key, Config: cfg, Result: res}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), key+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Len counts the entries currently stored, for tests and tooling.
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
