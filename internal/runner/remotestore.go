package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"hbcache/internal/fault"
	"hbcache/internal/sim"
)

// RemoteStoreStats is a point-in-time snapshot of a RemoteStore's
// counters, the observable record of how much fleet-wide dedup the
// shared store is buying.
type RemoteStoreStats struct {
	Gets      int64 `json:"gets"`       // lookups attempted
	Hits      int64 `json:"hits"`       // lookups answered with a verified entry
	Puts      int64 `json:"puts"`       // writes accepted by the server
	PutErrors int64 `json:"put_errors"` // writes dropped (network, server rejection)
	Corrupt   int64 `json:"corrupt"`    // fetched entries that failed verification
}

// RemoteStore is the Store backend over HTTP: results live in a store
// served by another process (normally the cluster coordinator's
// /v1/store endpoints), so every worker in a fleet shares one
// content-addressed result space and each unique config is simulated
// once, cluster-wide.
//
// Failure behavior follows the Store contract: an unreachable server or
// a mangled response is a Get miss (the job re-simulates locally) and a
// dropped Put (the result still returns to the caller). Fetched entries
// are checksum-verified before they are trusted; entries that fail
// verification count in CorruptEntries and are never served.
type RemoteStore struct {
	base   string
	hc     *http.Client
	faults *fault.Registry

	gets    atomic.Int64
	hits    atomic.Int64
	puts    atomic.Int64
	putErrs atomic.Int64
	corrupt atomic.Int64
}

// NewRemoteStore builds a store client against base (e.g.
// "http://coordinator:8080"). A nil client selects one with a 30s
// overall timeout — store calls must never wedge a simulation worker.
// faults, when non-nil, arms the store.remote.{get,put} chaos sites.
func NewRemoteStore(base string, hc *http.Client, faults *fault.Registry) *RemoteStore {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &RemoteStore{base: strings.TrimRight(base, "/"), hc: hc, faults: faults}
}

// URL reports the server base URL this store talks to.
func (r *RemoteStore) URL() string { return r.base }

// Stats returns a snapshot of the client-side counters.
func (r *RemoteStore) Stats() RemoteStoreStats {
	return RemoteStoreStats{
		Gets:      r.gets.Load(),
		Hits:      r.hits.Load(),
		Puts:      r.puts.Load(),
		PutErrors: r.putErrs.Load(),
		Corrupt:   r.corrupt.Load(),
	}
}

// Get fetches the entry for key from the remote server. Any failure —
// network, non-200 status, undecodable body, checksum mismatch — is a
// miss; only a verified entry is served.
func (r *RemoteStore) Get(key string) (sim.Result, bool) {
	r.gets.Add(1)
	// Store sites have no caller context (the Store interface is
	// deliberately context-free; the HTTP client's timeout bounds the
	// call); injected errors behave as network misses.
	if err := r.faults.Fire(context.Background(), fault.SiteStoreRemoteGet); err != nil {
		return sim.Result{}, false
	}
	resp, err := r.hc.Get(r.base + "/v1/store/" + key)
	if err != nil {
		return sim.Result{}, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return sim.Result{}, false
	}
	var e StoreEntry
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<22)).Decode(&e); err != nil || !e.Verify(key) {
		r.corrupt.Add(1)
		return sim.Result{}, false
	}
	r.hits.Add(1)
	return e.Result, true
}

// Put uploads a sealed entry for key. The server re-verifies the
// checksum before accepting, so a write mangled in flight is rejected
// rather than stored.
func (r *RemoteStore) Put(key string, cfg sim.Config, res sim.Result) error {
	if err := r.faults.Fire(context.Background(), fault.SiteStoreRemotePut); err != nil {
		r.putErrs.Add(1)
		return err
	}
	e := StoreEntry{Key: key, Config: cfg, Result: res}
	e.Seal()
	b, err := json.Marshal(e)
	if err != nil {
		r.putErrs.Add(1)
		return err
	}
	req, err := http.NewRequest(http.MethodPut, r.base+"/v1/store/"+key, bytes.NewReader(b))
	if err != nil {
		r.putErrs.Add(1)
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		r.putErrs.Add(1)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		r.putErrs.Add(1)
		return fmt.Errorf("runner: remote store put %s: HTTP %d", key[:8], resp.StatusCode)
	}
	r.puts.Add(1)
	return nil
}

// Keys lists every key the remote server holds.
func (r *RemoteStore) Keys() ([]string, error) {
	resp, err := r.hc.Get(r.base + "/v1/store")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("runner: remote store keys: HTTP %d", resp.StatusCode)
	}
	var body struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Keys, nil
}

// CorruptEntries counts fetched entries that failed verification.
func (r *RemoteStore) CorruptEntries() int64 { return r.corrupt.Load() }
