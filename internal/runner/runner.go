// Package runner executes simulation jobs in parallel with
// content-addressed result caching.
//
// The paper's evaluation is hundreds of independent (benchmark × size ×
// ports × hit-time × line-buffer) points; the runner treats each
// sim.Config as a schedulable, memoizable unit of work. A worker pool
// (-j workers, default runtime.NumCPU()) fans the points across
// goroutines while Run returns results in submission order, so CSV and
// table output is byte-identical at any worker count. A canonical
// encoding of the config keys both an in-memory memo — identical points
// submitted twice, even by different experiments sharing one Runner,
// simulate once — and an optional on-disk JSON store, so re-running
// figures or resuming an interrupted sweep skips already-simulated
// points.
//
// Jobs are individually robust: a panicking simulation surfaces as that
// job's error rather than crashing the process, failed jobs retry a
// bounded number of times, and context cancellation drains the pool
// cleanly with completed work already checkpointed to the cache.
package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"hbcache/internal/fault"
	"hbcache/internal/sim"
)

// Options configure a Runner.
type Options struct {
	// Workers is the number of concurrent simulation goroutines.
	// Zero or negative selects runtime.NumCPU().
	Workers int
	// CacheDir, when non-empty, enables the on-disk result cache: each
	// completed simulation is stored under its content-addressed key
	// and later runs with the same config are served from disk.
	// Ignored when Store is set.
	CacheDir string
	// Store, when non-nil, is the result store backing this runner —
	// disk (Cache), in-memory (MemStore), or a coordinator's shared
	// HTTP store (RemoteStore). It takes precedence over CacheDir.
	Store Store
	// Retries is how many times a failed or panicked job re-runs before
	// its error is surfaced. Simulations are deterministic, so the
	// zero default is right unless the sim function is stubbed.
	Retries int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it (±50% jitter, capped at 5s), so a
	// systemic failure — disk full, runaway load — is not hammered.
	// Zero selects 100ms; negative disables backoff (tests).
	RetryBackoff time.Duration
	// SimTimeout caps each simulation attempt's wall time (sim.RunOpts
	// .Timeout). Zero means uncapped.
	SimTimeout time.Duration
	// SimMaxCycles caps each simulation attempt's simulated cycles
	// (sim.RunOpts.MaxCycles). Zero means uncapped.
	SimMaxCycles uint64
	// SimCheck runs every simulation with the cycle-level invariant
	// checker installed (sim.RunOpts.Check). Roughly an order of
	// magnitude slower; a violation fails the job with
	// sim.ErrCheckFailed, which is fatal (deterministic), not retried.
	SimCheck bool
	// BatchSize, when greater than one, makes each worker execute up to
	// BatchSize cache-missing jobs as one lockstep sim.RunBatch instead
	// of one simulation at a time, sharing stream generation and the
	// functional prewarm between compatible lanes. Results stay
	// bit-identical to the per-run path and are still content-keyed,
	// memoized, cached, and returned in submission order; a retryable
	// lane failure falls back to per-run retries. Ignored when Sim
	// replaces the simulator or SnapshotDir is set — snapshot prewarm
	// sharing and lockstep batching are mutually exclusive, and the
	// snapshot path wins so resumable sweeps keep their checkpoints.
	BatchSize int
	// SnapshotDir, when non-empty, enables checkpoint/restore for the
	// default simulator: sweep neighbors sharing a prewarm projection
	// reuse one prewarm snapshot instead of each re-warming from cold,
	// and budget-truncated jobs (SimMaxCycles/SimTimeout) park an abort
	// snapshot there so a re-submission resumes instead of restarting.
	// Ignored when Sim is set.
	SnapshotDir string
	// Faults, when non-nil, is the chaos registry threaded through the
	// simulator and the disk cache's fault sites.
	Faults *fault.Registry
	// OnProgress, when non-nil, is called with a metrics snapshot after
	// every completed job. Calls are serialized (never concurrent with
	// each other), so the callback may write to a terminal unguarded.
	OnProgress func(Metrics)
	// Sim, when non-nil, replaces the real simulator. Embedders (the
	// service's tests, benchmark harnesses) substitute instrumented or
	// stubbed functions; nil selects sim.RunContext with this Options'
	// budget and faults. The function must honor ctx: the runner relies
	// on cancellation actually stopping work.
	Sim func(ctx context.Context, cfg sim.Config) (sim.Result, error)
	// OnTerminal, when non-nil, is called once per owned job as it
	// reaches a terminal state — cache hit, simulation success, or final
	// failure — with the job's canonical key, config, and error. Memo
	// duplicates riding an owner do not re-fire it. The coordinator's
	// sweep journal hooks its result records in here.
	OnTerminal func(key string, cfg sim.Config, err error)
}

// Retryable reports whether re-running a failed job could help.
// Cancellation, simulation budgets, and invalid configs are fatal: the
// identical deterministic failure would recur (or the caller has moved
// on). Everything else — panics, injected faults, I/O errors — gets its
// bounded retries.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, sim.ErrAborted),
		errors.Is(err, sim.ErrBudget),
		errors.Is(err, sim.ErrInvalidConfig),
		errors.Is(err, sim.ErrCheckFailed):
		return false
	}
	return true
}

// Metrics is a point-in-time snapshot of a Runner's counters. The JSON
// names are the stable wire format used by progress tooling and the
// service's API.
type Metrics struct {
	Submitted int           `json:"submitted"`   // jobs handed to the runner so far
	Done      int           `json:"done"`        // jobs finished, by any path below
	Simulated int           `json:"simulated"`   // jobs that actually ran the simulator
	CacheHits int           `json:"cache_hits"`  // jobs served from the on-disk cache
	MemoHits  int           `json:"memo_hits"`   // jobs deduplicated against an identical job this process
	Errors    int           `json:"errors"`      // jobs whose final attempt failed
	Retries   int           `json:"retries"`     // extra attempts consumed by failing jobs
	SimWall   time.Duration `json:"sim_wall_ns"` // cumulative wall time inside the simulator
	Elapsed   time.Duration `json:"elapsed_ns"`  // wall time since the runner was created

	// CorruptEntries is how many on-disk cache entries failed their
	// integrity check and were quarantined (renamed *.corrupt).
	CorruptEntries int `json:"corrupt_entries"`
}

// Rate is completed jobs per second of runner lifetime (cache and memo
// hits included — it measures sweep throughput, not simulator speed).
func (m Metrics) Rate() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Done) / m.Elapsed.Seconds()
}

// JobResult is the outcome of one submitted job.
type JobResult struct {
	Config   sim.Config
	Result   sim.Result
	Err      error
	CacheHit bool          // served from the on-disk cache
	MemoHit  bool          // deduplicated against an identical job
	Wall     time.Duration // time spent producing the result
	Attempts int           // simulation attempts (0 for memo hits and skips)
}

// Runner schedules simulation jobs onto a worker pool.
type Runner struct {
	workers    int
	retries    int
	backoff    time.Duration
	onProgress func(Metrics)
	onTerminal func(key string, cfg sim.Config, err error)
	store      Store

	// batch is the lockstep lanes per worker (1 = per-run path) and
	// runOpts the options handed to sim.RunBatch on the batched path.
	batch   int
	runOpts sim.RunOpts

	// sim runs one simulation; tests substitute instrumented stubs.
	sim func(ctx context.Context, cfg sim.Config) (sim.Result, error)

	start time.Time

	// cbMu serializes progress delivery: it is taken before the metrics
	// snapshot and held through the callbacks, so every subscriber sees
	// snapshots in non-decreasing Done order, never concurrently. Lock
	// order is cbMu before mu; nothing takes them in reverse.
	cbMu      sync.Mutex
	listeners map[int]func(Metrics)
	nextLsn   int

	mu      sync.Mutex
	memo    map[string]*memoEntry
	metrics Metrics
}

// memoEntry is the single in-flight-or-finished execution of one
// canonical config; duplicates wait on done instead of re-simulating.
type memoEntry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// New builds a Runner. The only error source is creating CacheDir.
func New(opts Options) (*Runner, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	runOpts := sim.RunOpts{
		MaxCycles: opts.SimMaxCycles,
		Timeout:   opts.SimTimeout,
		Faults:    opts.Faults,
		Check:     opts.SimCheck,
	}
	simFn := opts.Sim
	if simFn == nil {
		if opts.SnapshotDir != "" {
			simFn = snapshotSim(opts.SnapshotDir, runOpts)
		} else {
			simFn = func(ctx context.Context, cfg sim.Config) (sim.Result, error) {
				return sim.RunContext(ctx, cfg, runOpts)
			}
		}
	}
	batch := opts.BatchSize
	if batch < 1 || opts.Sim != nil || opts.SnapshotDir != "" {
		batch = 1
	}
	backoff := opts.RetryBackoff
	switch {
	case backoff == 0:
		backoff = 100 * time.Millisecond
	case backoff < 0:
		backoff = 0
	}
	r := &Runner{
		workers:    workers,
		retries:    opts.Retries,
		backoff:    backoff,
		onProgress: opts.OnProgress,
		onTerminal: opts.OnTerminal,
		batch:      batch,
		runOpts:    runOpts,
		sim:        simFn,
		start:      time.Now(),
		memo:       map[string]*memoEntry{},
		listeners:  map[int]func(Metrics){},
	}
	switch {
	case opts.Store != nil:
		r.store = opts.Store
	case opts.CacheDir != "":
		c, err := NewCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		c.faults = opts.Faults
		r.store = c
	}
	return r, nil
}

// Store reports the result store backing this runner, nil when results
// are not persisted. The service mounts it over HTTP in coordinator
// role so a worker fleet can share it.
func (r *Runner) Store() Store { return r.store }

// Workers reports the configured pool width.
func (r *Runner) Workers() int { return r.workers }

// BatchSize reports the effective lockstep lanes per worker (1 when
// batching is off or unavailable for this runner's configuration).
func (r *Runner) BatchSize() int { return r.batch }

// AddListener subscribes fn to the same per-completion metrics
// snapshots as Options.OnProgress and returns a function that removes
// the subscription. Deliveries are serialized with each other and with
// OnProgress, and snapshots arrive in non-decreasing Done order, so a
// subscriber may publish them (e.g. over SSE) without reordering. The
// callback must not call back into the Runner's blocking methods.
func (r *Runner) AddListener(fn func(Metrics)) (remove func()) {
	r.cbMu.Lock()
	id := r.nextLsn
	r.nextLsn++
	r.listeners[id] = fn
	r.cbMu.Unlock()
	return func() {
		r.cbMu.Lock()
		delete(r.listeners, id)
		r.cbMu.Unlock()
	}
}

// Metrics returns a snapshot of the runner's counters.
func (r *Runner) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Runner) snapshotLocked() Metrics {
	m := r.metrics
	m.Elapsed = time.Since(r.start)
	if r.store != nil {
		m.CorruptEntries = int(r.store.CorruptEntries())
	}
	return m
}

// Run executes the configs across the worker pool and returns one
// JobResult per config, in submission order regardless of completion
// order. Per-job failures are reported in the corresponding
// JobResult.Err; the returned error is non-nil only when ctx was
// cancelled, in which case undispatched jobs carry ctx's error.
func (r *Runner) Run(ctx context.Context, cfgs []sim.Config) ([]JobResult, error) {
	if r.batch > 1 {
		return r.runBatched(ctx, cfgs)
	}
	results := make([]JobResult, len(cfgs))
	r.mu.Lock()
	r.metrics.Submitted += len(cfgs)
	r.mu.Unlock()

	workers := r.workers
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.do(ctx, cfgs[i])
			}
		}()
	}
dispatch:
	for i := range cfgs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Jobs the dispatcher never handed out are still zero values;
		// mark them cancelled so callers see every slot accounted for.
		for i := range results {
			if results[i].Err == nil && results[i].Attempts == 0 && !results[i].MemoHit && !results[i].CacheHit {
				results[i].Config = cfgs[i]
				results[i].Err = err
				r.finish(&results[i])
			}
		}
		return results, err
	}
	return results, nil
}

// RunOne executes a single config synchronously on the calling
// goroutine, still going through the memo and cache.
func (r *Runner) RunOne(ctx context.Context, cfg sim.Config) (sim.Result, error) {
	jr := r.RunJob(ctx, cfg)
	return jr.Result, jr.Err
}

// RunJob is RunOne returning the full JobResult, so embedders like the
// HTTP service can report cache/memo provenance and wall time per job.
func (r *Runner) RunJob(ctx context.Context, cfg sim.Config) JobResult {
	r.mu.Lock()
	r.metrics.Submitted++
	r.mu.Unlock()
	return r.do(ctx, cfg)
}

// do produces the result for one job: memo, then disk cache, then a
// simulation with panic recovery and bounded retry. It records metrics
// and fires the progress callback exactly once per job.
func (r *Runner) do(ctx context.Context, cfg sim.Config) JobResult {
	jr := JobResult{Config: cfg}
	started := time.Now()
	var (
		key   string
		owner bool
	)
	settle := func() JobResult {
		jr.Wall = time.Since(started)
		if owner && r.onTerminal != nil {
			// Owned jobs only: duplicates riding the memo would journal
			// the same key again with no new information.
			r.onTerminal(key, cfg, jr.Err)
		}
		r.finish(&jr)
		return jr
	}

	if err := ctx.Err(); err != nil {
		jr.Err = err
		return settle()
	}

	k, err := Key(cfg)
	if err != nil {
		jr.Err = fmt.Errorf("runner: keying %s config: %w", cfg.Benchmark, err)
		return settle()
	}
	key = k

	r.mu.Lock()
	entry, inFlight := r.memo[key]
	if !inFlight {
		entry = &memoEntry{done: make(chan struct{})}
		r.memo[key] = entry
	}
	r.mu.Unlock()

	if inFlight {
		select {
		case <-entry.done:
			jr.Result, jr.Err = entry.res, entry.err
			jr.MemoHit = true
		case <-ctx.Done():
			jr.Err = ctx.Err()
		}
		return settle()
	}

	// This goroutine owns the entry: fill it from disk or by simulating,
	// then publish for any duplicates waiting above.
	owner = true
	defer close(entry.done)

	if r.store != nil {
		if res, ok := r.store.Get(key); ok {
			entry.res = res
			jr.Result, jr.CacheHit = res, true
			return settle()
		}
	}

	var res sim.Result
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			entry.err = err
			jr.Err = err
			return settle()
		}
		jr.Attempts = attempt + 1
		res, err = r.simulate(ctx, cfg)
		if err == nil || attempt >= r.retries || !Retryable(err) {
			break
		}
		r.mu.Lock()
		r.metrics.Retries++
		r.mu.Unlock()
		if !r.sleepBackoff(ctx, attempt) {
			entry.err = ctx.Err()
			jr.Err = entry.err
			return settle()
		}
	}
	if err != nil {
		entry.err = fmt.Errorf("runner: %s: %w", cfg.Benchmark, err)
		jr.Err = entry.err
		return settle()
	}
	entry.res = res
	jr.Result = res
	if r.store != nil {
		// Checkpoint before reporting done so a cancellation right after
		// this job still finds the result in the store next run. A store
		// write failure is not a job failure — the result itself is
		// good — so it is deliberately dropped.
		_ = r.store.Put(key, cfg, res)
	}
	return settle()
}

// sleepBackoff waits out the exponential-backoff delay before retry
// attempt+1: base<<attempt with ±50% jitter, capped at 5s. It reports
// false if ctx was cancelled while waiting.
func (r *Runner) sleepBackoff(ctx context.Context, attempt int) bool {
	if r.backoff <= 0 {
		return true
	}
	d := r.backoff << attempt
	if d <= 0 || d > 5*time.Second {
		d = 5 * time.Second
	}
	d = d/2 + rand.N(d) // uniform in [d/2, 3d/2)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// simulate runs one simulation, converting a panic into an error so a
// bad design point cannot take down a thousand-point sweep.
func (r *Runner) simulate(ctx context.Context, cfg sim.Config) (res sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("simulation panicked: %v\n%s", p, debug.Stack())
		}
	}()
	return r.sim(ctx, cfg)
}

// finish folds one completed job into the metrics and fires the
// progress callback and listeners with a consistent snapshot. cbMu is
// taken before the counters are updated so concurrent finishes deliver
// their snapshots in the order the counters advanced.
func (r *Runner) finish(jr *JobResult) {
	r.cbMu.Lock()
	defer r.cbMu.Unlock()
	r.mu.Lock()
	r.metrics.Done++
	switch {
	case jr.CacheHit:
		r.metrics.CacheHits++
	case jr.MemoHit:
		r.metrics.MemoHits++
	case jr.Attempts > 0:
		r.metrics.Simulated++
		r.metrics.SimWall += jr.Wall
	}
	if jr.Err != nil {
		r.metrics.Errors++
	}
	snap := r.snapshotLocked()
	r.mu.Unlock()
	if r.onProgress != nil {
		r.onProgress(snap)
	}
	for _, fn := range r.listeners {
		fn(snap)
	}
}

// Results unwraps a batch into bare sim.Results, returning the first
// per-job error encountered.
func Results(jrs []JobResult) ([]sim.Result, error) {
	out := make([]sim.Result, len(jrs))
	for i, jr := range jrs {
		if jr.Err != nil {
			return nil, jr.Err
		}
		out[i] = jr.Result
	}
	return out, nil
}

// Parallel runs fn(i) for each i in [0, n) across at most workers
// goroutines. It is the runner's pool discipline for work that is not a
// sim.Config job (and so cannot be cached), like the raw miss-rate
// points of Figure 3. The first error stops dispatch and is returned;
// ctx cancellation likewise.
func Parallel(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		once  sync.Once
		first error
	)
	fail := func(err error) {
		once.Do(func() {
			first = err
			cancel()
		})
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if cctx.Err() != nil {
					continue
				}
				if err := fn(i); err != nil {
					fail(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-cctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}
