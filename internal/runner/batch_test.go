package runner

import (
	"context"
	"errors"
	"os"
	"testing"

	"hbcache/internal/cpu"
	"hbcache/internal/fault"
	"hbcache/internal/mem"
	"hbcache/internal/sim"
)

// realConfig builds a small real simulation config; index varies the
// organization so a batch holds shareable but distinct lanes.
func realConfig(i int) sim.Config {
	orgs := []mem.SystemConfig{
		mem.DefaultSRAMSystem(32<<10, 1, mem.PortConfig{Kind: mem.IdealPorts, Count: 2}, false),
		mem.DefaultSRAMSystem(32<<10, 2, mem.PortConfig{Kind: mem.BankedPorts, Count: 8}, false),
		mem.DefaultSRAMSystem(32<<10, 2, mem.PortConfig{Kind: mem.DuplicatePorts}, true),
		mem.DefaultSRAMSystem(16<<10, 1, mem.PortConfig{Kind: mem.DuplicatePorts}, false),
	}
	benches := []string{"gcc", "li", "tomcatv"}
	return sim.Config{
		Benchmark:    benches[i%len(benches)],
		Seed:         1,
		CPU:          cpu.DefaultConfig(),
		Memory:       orgs[i%len(orgs)],
		PrewarmInsts: 20_000,
		WarmupInsts:  2_000,
		MeasureInsts: 6_000,
	}
}

func realConfigs(n int) []sim.Config {
	cfgs := make([]sim.Config, n)
	for i := range cfgs {
		cfgs[i] = realConfig(i)
	}
	return cfgs
}

// TestBatchedRunMatchesSingle pins the batched scheduling path's
// contract: identical results, in submission order, as the per-run
// path — at several batch sizes, including batches that do not divide
// the job count.
func TestBatchedRunMatchesSingle(t *testing.T) {
	cfgs := realConfigs(10)
	single, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{2, 4, 16} {
		r, err := New(Options{Workers: 2, BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		if r.BatchSize() != batch {
			t.Fatalf("BatchSize() = %d, want %d", r.BatchSize(), batch)
		}
		got, err := r.Run(context.Background(), cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfgs {
			if got[i].Err != nil {
				t.Fatalf("batch=%d job %d: %v", batch, i, got[i].Err)
			}
			if got[i].Result != want[i].Result {
				t.Errorf("batch=%d job %d: result diverges from per-run path:\nbatched: %+v\nsingle:  %+v",
					batch, i, got[i].Result, want[i].Result)
			}
		}
		m := r.Metrics()
		if m.Simulated != len(cfgs) || m.Done != len(cfgs) {
			t.Errorf("batch=%d: metrics = %+v, want %d simulated/done", batch, m, len(cfgs))
		}
	}
}

// TestBatchedRunDedupAndCache: duplicates within one batched Run memo
// to a single execution, and a second Run over a shared store is
// served entirely from cache.
func TestBatchedRunDedupAndCache(t *testing.T) {
	base := realConfigs(4)
	cfgs := append(append([]sim.Config{}, base...), base...) // every config twice
	store := NewMemStore()
	r, err := New(Options{Workers: 2, BatchSize: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	jrs, err := r.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range jrs {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if jr.Result != jrs[i%len(base)].Result {
			t.Errorf("duplicate %d diverges from its original", i)
		}
	}
	m := r.Metrics()
	if m.Simulated != len(base) {
		t.Errorf("Simulated = %d, want %d (duplicates must memo)", m.Simulated, len(base))
	}
	if m.MemoHits != len(base) {
		t.Errorf("MemoHits = %d, want %d", m.MemoHits, len(base))
	}

	r2, err := New(Options{Workers: 2, BatchSize: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	jrs2, err := r2.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range jrs2 {
		if jr.Err != nil || !jr.CacheHit {
			t.Errorf("job %d: err=%v cacheHit=%v, want cached", i, jr.Err, jr.CacheHit)
		}
		if jr.Result != jrs[i].Result {
			t.Errorf("cached job %d diverges", i)
		}
	}
	if m2 := r2.Metrics(); m2.Simulated != 0 || m2.CacheHits != len(base) {
		t.Errorf("second runner metrics = %+v, want all cache hits", m2)
	}
}

// TestBatchedRetryFallback: an injected one-shot failure at the batch's
// fault site fails every lane of the first batch attempt; each lane
// must then fall back to the per-run path and succeed within the retry
// budget.
func TestBatchedRetryFallback(t *testing.T) {
	reg := fault.New(1).Add(fault.Rule{Site: fault.SiteSimRun, Kind: fault.KindError, Limit: 1})
	r, err := New(Options{Workers: 1, BatchSize: 4, Retries: 2, RetryBackoff: -1, Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := realConfigs(3)
	jrs, err := r.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for i, jr := range jrs {
		if jr.Err != nil {
			t.Fatalf("job %d did not recover: %v", i, jr.Err)
		}
		if jr.Attempts > 1 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("no job recorded a retry; the injected fault never hit the batch path")
	}
	if m := r.Metrics(); m.Retries == 0 {
		t.Errorf("metrics recorded no retries: %+v", m)
	}
}

// TestBatchedSnapshotDirWins pins the documented interaction for the
// two mutually exclusive prewarm-sharing mechanisms: with SnapshotDir
// set, batching is disabled and the snapshot path keeps producing its
// shared prewarm checkpoints.
func TestBatchedSnapshotDirWins(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Workers: 2, BatchSize: 8, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchSize() != 1 {
		t.Fatalf("BatchSize() = %d with SnapshotDir set, want 1 (snapshot path wins)", r.BatchSize())
	}
	// Two configs sharing a prewarm projection: the second should find
	// the first's prewarm snapshot.
	a := realConfig(0)
	b := realConfig(0)
	b.Memory.L1.HitCycles = 3 // timing-only change, same prewarm projection
	jrs, err := r.Run(context.Background(), []sim.Config{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range jrs {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Error("SnapshotDir is empty: prewarm snapshot sharing was lost")
	}
	// And a custom Sim likewise forces the per-run path.
	rs, err := New(Options{BatchSize: 8, Sim: stubSim})
	if err != nil {
		t.Fatal(err)
	}
	if rs.BatchSize() != 1 {
		t.Errorf("BatchSize() = %d with Sim set, want 1", rs.BatchSize())
	}
}

// TestBatchedCancellation: a cancelled context settles every slot with
// an error and leaves no memo waiter hanging.
func TestBatchedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := New(Options{Workers: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := realConfigs(6)
	jrs, runErr := r.Run(ctx, cfgs)
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", runErr)
	}
	for i, jr := range jrs {
		if jr.Err == nil {
			t.Errorf("job %d has no error after cancellation", i)
		}
	}
	if m := r.Metrics(); m.Done != len(cfgs) {
		t.Errorf("Done = %d, want %d (every slot settled)", m.Done, len(cfgs))
	}
}
