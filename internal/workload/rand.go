// Package workload synthesizes the dynamic instruction streams of the
// paper's nine benchmarks. The original study ran SPEC95 and SimOS
// multiprogramming workloads (with operating system references) under
// MXS; neither the binaries, IRIX, nor SimOS are reproducible here, so
// each benchmark is modeled by a parameterized generator that matches
// the properties the experiments actually consume:
//
//   - the load/store fractions of the instruction stream (Table 2),
//   - the kernel/user split of the paper's Table 2 (kernel references go
//     to a separate, OS-flavoured part of the address space),
//   - the dependence structure (floating point codes expose far more
//     instruction-level parallelism than integer codes),
//   - branch density and predictability (loop-closing branches that a
//     two-bit predictor learns, plus data-dependent branches),
//   - and, most importantly, memory locality: a mixture of streamed,
//     hot-set, uniformly random, and pointer-chasing regions sized per
//     benchmark so that the miss-rate-versus-cache-size curves have the
//     Figure 3 character of their group (integer codes have small
//     working sets, multiprogramming codes large ones, floating point
//     codes streaming behaviour with sharp cliffs).
package workload

import "math"

// Rand is a small deterministic xorshift64* generator. The simulator
// must be reproducible run to run, so all randomness flows from
// explicitly seeded instances of this type (never math/rand's global
// state).
type Rand struct {
	s uint64
}

// NewRand returns a generator seeded with seed (zero is remapped, since
// xorshift has a zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// randMult is the xorshift64* output multiplier, shared with hot loops
// that inline the generator to keep its state in a register.
const randMult = 0x2545F4914F6CDD1D

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * randMult
}

// Float64 returns a uniform value in [0, 1). Multiplying by the exact
// constant 2^-53 scales the 53-bit integer without rounding, so this is
// bit-identical to dividing by 2^53.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	u := r.Uint64()
	if n&(n-1) == 0 {
		return int(u & uint64(n-1))
	}
	return int(u % uint64(n))
}

// boolThreshold converts a probability to the integer threshold t such
// that Float64() < p is exactly u>>11 < t for the same 64-bit draw u:
// the 53-bit value u>>11 is below p*2^53 iff it is below ceil(p*2^53)
// (both are exact — the product is a power-of-two scaling). Hot paths
// precompute this once and compare integers instead of doing the
// int->float conversion and float compare per draw.
func boolThreshold(p float64) uint64 {
	t := math.Ceil(p * (1 << 53))
	if !(t > 0) { // also false for NaN
		return 0
	}
	if t >= (1 << 53) {
		return 1 << 53
	}
	return uint64(t)
}

// geomThreshold converts a geometric mean to the integer threshold t
// such that Float64() > 1/mean is exactly u>>11 > t: the 53-bit value
// is above p*2^53 iff it is above floor(p*2^53). Meaningful only for
// mean > 1 (Geometric returns 1 without drawing otherwise).
func geomThreshold(mean float64) uint64 {
	return uint64(math.Floor((1 / mean) * (1 << 53)))
}

// Geometric returns a sample from a geometric distribution with the
// given mean (>= 1): the number of Bernoulli trials up to and including
// the first success with p = 1/mean. The result is always at least 1.
func (r *Rand) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	th := geomThreshold(mean)
	n := 1
	for r.Uint64()>>11 > th && n < 1<<20 {
		n++
	}
	return n
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Uint64()>>11 < boolThreshold(p) }
