// Package workload synthesizes the dynamic instruction streams of the
// paper's nine benchmarks. The original study ran SPEC95 and SimOS
// multiprogramming workloads (with operating system references) under
// MXS; neither the binaries, IRIX, nor SimOS are reproducible here, so
// each benchmark is modeled by a parameterized generator that matches
// the properties the experiments actually consume:
//
//   - the load/store fractions of the instruction stream (Table 2),
//   - the kernel/user split of the paper's Table 2 (kernel references go
//     to a separate, OS-flavoured part of the address space),
//   - the dependence structure (floating point codes expose far more
//     instruction-level parallelism than integer codes),
//   - branch density and predictability (loop-closing branches that a
//     two-bit predictor learns, plus data-dependent branches),
//   - and, most importantly, memory locality: a mixture of streamed,
//     hot-set, uniformly random, and pointer-chasing regions sized per
//     benchmark so that the miss-rate-versus-cache-size curves have the
//     Figure 3 character of their group (integer codes have small
//     working sets, multiprogramming codes large ones, floating point
//     codes streaming behaviour with sharp cliffs).
package workload

// Rand is a small deterministic xorshift64* generator. The simulator
// must be reproducible run to run, so all randomness flows from
// explicitly seeded instances of this type (never math/rand's global
// state).
type Rand struct {
	s uint64
}

// NewRand returns a generator seeded with seed (zero is remapped, since
// xorshift has a zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Geometric returns a sample from a geometric distribution with the
// given mean (>= 1): the number of Bernoulli trials up to and including
// the first success with p = 1/mean. The result is always at least 1.
func (r *Rand) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.Float64() > p && n < 1<<20 {
		n++
	}
	return n
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }
