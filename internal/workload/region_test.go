package workload

import (
	"testing"
	"testing/quick"

	"hbcache/internal/isa"
)

func TestStreamWithColumnStride(t *testing.T) {
	rg := &Region{Bytes: 64 << 10, Pattern: Stream, Stride: 4104, base: 0}
	r := NewRand(3)
	prev := rg.next(r)
	for i := 0; i < 100; i++ {
		cur := rg.next(r)
		if cur >= 64<<10 {
			t.Fatalf("address %#x escaped the region", cur)
		}
		if cur != prev+4104 && cur >= prev {
			t.Fatalf("stride broken: %#x after %#x", cur, prev)
		}
		prev = cur
	}
}

func TestColumnStrideTouchesManyLines(t *testing.T) {
	// Consecutive column-sweep references must land in different 512-byte
	// rows — that is the property that punishes long cache lines.
	rg := &Region{Bytes: 512 << 10, Pattern: Stream, Stride: 4104, base: 0}
	r := NewRand(4)
	rows := map[uint64]bool{}
	const n = 100
	for i := 0; i < n; i++ {
		rows[rg.next(r)/512] = true
	}
	if len(rows) < n*9/10 {
		t.Errorf("column sweep touched only %d distinct rows in %d refs", len(rows), n)
	}
}

func TestHotScatteringSpreadsRows(t *testing.T) {
	// The hot set must be scattered: its references must touch far more
	// distinct 512-byte rows than a contiguous prefix would.
	rg := &Region{Bytes: 256 << 10, Pattern: Hot, HotBytes: 8 << 10, ColdFrac: 0, base: 0}
	r := NewRand(5)
	rows := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		rows[rg.next(r)/512] = true
	}
	// A contiguous 8 KB prefix would span 16 rows; scattering must
	// spread the chunks much wider.
	if len(rows) < 30 {
		t.Errorf("hot set spans only %d rows; scattering broken", len(rows))
	}
}

func TestColdFracControlsTail(t *testing.T) {
	// With ColdFrac 0.5, about half the references fall outside the hot
	// chunks; with ColdFrac ~0, almost none do (statistically: compare
	// distinct-line footprints).
	foot := func(coldFrac float64) int {
		rg := &Region{Bytes: 1 << 20, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: coldFrac, base: 0}
		r := NewRand(6)
		lines := map[uint64]bool{}
		for i := 0; i < 30000; i++ {
			lines[rg.next(r)/32] = true
		}
		return len(lines)
	}
	hotOnly := foot(0.001)
	half := foot(0.5)
	if half < hotOnly*3 {
		t.Errorf("ColdFrac 0.5 footprint (%d lines) must dwarf hot-only (%d)", half, hotOnly)
	}
}

func TestLayoutStaggersAndSeparates(t *testing.T) {
	user := []*Region{{Bytes: 4096}, {Bytes: 4096}, {Bytes: 4096}}
	kern := []*Region{{Bytes: 4096}}
	layout(user, kern)
	// No overlaps, ascending, staggered set offsets.
	for i := 1; i < len(user); i++ {
		if user[i].base <= user[i-1].base+user[i-1].Bytes {
			t.Fatalf("regions overlap: %#x after %#x", user[i].base, user[i-1].base)
		}
	}
	offsets := map[uint64]bool{}
	for _, rg := range user {
		offsets[rg.base%4096] = true
	}
	if len(offsets) < 2 {
		t.Error("region bases must be staggered across cache sets")
	}
	if kern[0].base < 0x8000_0000_0000 {
		t.Error("kernel regions must live in the kernel half")
	}
}

func TestLoadsClusterAtBodyTops(t *testing.T) {
	// Generated loop bodies must front-load their loads: the mean
	// position of loads within a body should be earlier than the mean
	// position of stores.
	g := MustNew("gcc", 21)
	// Walk instructions tracking position within the current static
	// body by PC offset.
	var loadPos, storePos, loads, stores float64
	for i := 0; i < 50000; i++ {
		inst, _ := g.Next()
		off := float64(inst.PC & 0xFFF)
		switch inst.Op {
		case isa.Load:
			loadPos += off
			loads++
		case isa.Store:
			storePos += off
			stores++
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatal("no memory operations generated")
	}
	if loadPos/loads >= storePos/stores {
		t.Errorf("loads (mean offset %.1f) must precede stores (%.1f)", loadPos/loads, storePos/stores)
	}
}

func TestRegionsAccessorCoversAllRegions(t *testing.T) {
	g := MustNew("database", 1)
	infos := g.Regions()
	m, _ := ModelFor("database")
	want := len(m.Regions) + len(m.KernelRegions)
	if len(infos) != want {
		t.Fatalf("Regions() = %d entries, want %d", len(infos), want)
	}
	kernelSeen := false
	for _, ri := range infos {
		if ri.Bytes == 0 {
			t.Errorf("region %s has zero size", ri.Name)
		}
		if ri.Kernel {
			kernelSeen = true
		}
	}
	if !kernelSeen {
		t.Error("kernel regions missing from Regions()")
	}
}

// Property: region addresses never escape their region for any pattern.
func TestRegionAddressBoundsProperty(t *testing.T) {
	f := func(seed uint64, patSel uint8, sizeSel uint8) bool {
		sizes := []uint64{4 << 10, 64 << 10, 1 << 20}
		rg := &Region{
			Bytes:   sizes[int(sizeSel)%3],
			Pattern: Pattern(int(patSel) % 4),
			Stride:  8,
			base:    0x10000,
		}
		r := NewRand(seed)
		for i := 0; i < 500; i++ {
			a := rg.next(r)
			if a < rg.base || a >= rg.base+rg.Bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the generator never emits a memory op with a zero size or a
// non-memory op with an address region set.
func TestGeneratorInstWellFormedProperty(t *testing.T) {
	for _, name := range []string{"gcc", "tomcatv", "database"} {
		g := MustNew(name, 99)
		for i := 0; i < 20000; i++ {
			inst, ok := g.Next()
			if !ok {
				t.Fatal("generator must be unbounded")
			}
			if inst.Op.IsMem() && inst.Size == 0 {
				t.Fatalf("%s: memory op with zero size", name)
			}
			if inst.Op == isa.Branch && inst.Dst != isa.NoReg {
				t.Fatalf("%s: branch with a destination register", name)
			}
		}
	}
}
