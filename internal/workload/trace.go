package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"hbcache/internal/isa"
)

// This file is the hbcache-trace-v1 binary format: a compact recorded
// instruction stream that replays through the simulator bit-identically
// to the generator that produced it (or to any external stream imported
// into the same record shape).
//
// File layout, all little-endian:
//
//	magic    8 bytes  "HBCTRACE"
//	version  1 byte   1
//	hlen     uvarint  header length in bytes
//	header   hlen     JSON TraceHeader (kind, benchmark, seed, count, regions)
//	plen     uvarint  record payload length in bytes
//	payload  plen     count packed records (see below)
//	trailer  32 bytes SHA-256 over every preceding byte
//
// One record:
//
//	flags    1 byte   op (bits 0-3) | taken<<4 | kernel<<5; bits 6-7 zero
//	dPC      varint   PC delta from the previous record (zigzag)
//	dst      1 byte   destination register + 1 (0 = isa.NoReg)
//	src1     1 byte   source 1 register + 1
//	src2     1 byte   source 2 register + 1
//	-- memory ops (load/store) only --
//	dAddr    varint   effective-address delta from the previous memory op
//	size     1 byte   access size in bytes
//
// Varint deltas exploit the stream's locality (loop bodies revisit
// nearby PCs; regions cluster addresses), packing a typical record into
// 6-9 bytes versus the 40 of an in-memory isa.Inst. The SHA-256 trailer
// follows the snapshot envelope's conventions — sealed over the exact
// bytes, verified before anything is parsed deeply, corrupt files
// quarantined to *.corrupt — and its hex doubles as the trace's content
// digest, the address used for caching and service upload dedup.
// OpenTrace performs a full validation decode before returning, so a
// Trace that opened successfully can never fail (or panic) mid-replay:
// adversarial bytes are rejected at the boundary, not discovered by the
// core.

// TraceKind is the header discriminator of this format generation. Bump
// the suffix when the record encoding changes incompatibly; older files
// then fail with ErrTraceKind instead of misdecoding.
const TraceKind = "hbcache-trace-v1"

// traceMagic opens every trace file.
const traceMagic = "HBCTRACE"

// traceVersion is the container layout version (magic + varint framing +
// SHA-256 trailer). The header kind versions the record encoding.
const traceVersion = 1

// maxTraceHeaderBytes bounds the JSON header so adversarial length
// prefixes cannot demand absurd allocations before the checksum check.
const maxTraceHeaderBytes = 1 << 20

// Sentinel errors classifying unusable trace bytes; they arrive wrapped
// with detail, so test with errors.Is.
var (
	// ErrTraceCorrupt marks truncated, overlong, undecodable, or
	// checksum-failing bytes.
	ErrTraceCorrupt = errors.New("workload: trace corrupt")
	// ErrTraceVersion marks a trace from an incompatible container
	// version.
	ErrTraceVersion = errors.New("workload: trace format version mismatch")
	// ErrTraceKind marks a valid container holding records this binary
	// does not decode.
	ErrTraceKind = errors.New("workload: trace kind mismatch")
)

// TraceHeader is the JSON metadata block of a trace file.
type TraceHeader struct {
	Kind      string `json:"kind"`
	Benchmark string `json:"benchmark"`
	Seed      uint64 `json:"seed"`
	// Count is the number of records in the payload.
	Count uint64 `json:"count"`
	// Regions is the recorded workload's laid-out address space,
	// carried so the pre-run region sweep behaves identically on
	// replay.
	Regions []RegionInfo `json:"regions"`
}

// quarantinedTraces counts trace files quarantined process-wide.
var quarantinedTraces atomic.Int64

// TracesQuarantined reports how many trace files this process has
// quarantined to *.corrupt.
func TracesQuarantined() int64 { return quarantinedTraces.Load() }

// TraceWriter encodes an instruction stream into hbcache-trace-v1
// bytes. Append instructions with Add, then seal with Bytes.
type TraceWriter struct {
	header   TraceHeader
	payload  []byte
	prevPC   uint64
	prevAddr uint64
}

// NewTraceWriter starts a trace labeled with the stream's provenance.
// Benchmark and seed are metadata (replay derives nothing from them);
// regions should be the producing Source's Regions() so replay sweeps
// the same address space.
func NewTraceWriter(benchmark string, seed uint64, regions []RegionInfo) *TraceWriter {
	return &TraceWriter{header: TraceHeader{
		Kind:      TraceKind,
		Benchmark: benchmark,
		Seed:      seed,
		Regions:   regions,
	}}
}

// Add appends one instruction. It fails only on records the format
// cannot carry (an out-of-range op or register), which no isa.Reader
// produces in practice.
func (w *TraceWriter) Add(inst isa.Inst) error {
	if int(inst.Op) >= isa.NumOps {
		return fmt.Errorf("workload: trace cannot encode op %d", inst.Op)
	}
	if err := checkReg(inst.Dst); err != nil {
		return err
	}
	if err := checkReg(inst.Src1); err != nil {
		return err
	}
	if err := checkReg(inst.Src2); err != nil {
		return err
	}
	flags := byte(inst.Op)
	if inst.Taken {
		flags |= 1 << 4
	}
	if inst.Kernel {
		flags |= 1 << 5
	}
	w.payload = append(w.payload, flags)
	w.payload = binary.AppendVarint(w.payload, int64(inst.PC-w.prevPC))
	w.prevPC = inst.PC
	w.payload = append(w.payload, byte(inst.Dst+1), byte(inst.Src1+1), byte(inst.Src2+1))
	if inst.Op.IsMem() {
		w.payload = binary.AppendVarint(w.payload, int64(inst.Addr-w.prevAddr))
		w.prevAddr = inst.Addr
		w.payload = append(w.payload, inst.Size)
	}
	w.header.Count++
	return nil
}

func checkReg(r int16) error {
	if r < isa.NoReg || r >= isa.NumLogicalRegs {
		return fmt.Errorf("workload: trace cannot encode register %d", r)
	}
	return nil
}

// Count reports how many records have been added.
func (w *TraceWriter) Count() uint64 { return w.header.Count }

// Bytes seals the trace: header, payload, and SHA-256 trailer.
func (w *TraceWriter) Bytes() ([]byte, error) {
	hdr, err := json.Marshal(w.header)
	if err != nil {
		return nil, fmt.Errorf("workload: encoding trace header: %w", err)
	}
	out := make([]byte, 0, len(traceMagic)+1+10+len(hdr)+10+len(w.payload)+sha256.Size)
	out = append(out, traceMagic...)
	out = append(out, traceVersion)
	out = binary.AppendUvarint(out, uint64(len(hdr)))
	out = append(out, hdr...)
	out = binary.AppendUvarint(out, uint64(len(w.payload)))
	out = append(out, w.payload...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...), nil
}

// RecordTrace synthesizes the named benchmark's stream for n
// instructions and encodes it — the self-generated fixture path: no
// external trace inputs are needed to exercise the whole replay stack.
func RecordTrace(benchmark string, seed uint64, n uint64) ([]byte, error) {
	gen, err := New(benchmark, seed)
	if err != nil {
		return nil, err
	}
	w := NewTraceWriter(benchmark, seed, gen.Regions())
	for i := uint64(0); i < n; i++ {
		inst, _ := gen.Next()
		if err := w.Add(inst); err != nil {
			return nil, err
		}
	}
	return w.Bytes()
}

// Trace is a verified, immutable in-memory trace. Open one with
// OpenTrace/OpenTraceFile; replay it through any number of independent
// TraceReaders.
type Trace struct {
	header  TraceHeader
	payload []byte
	digest  string
}

// OpenTrace verifies data as a complete trace file: container framing,
// checksum, header kind, and a full decode of every record. The
// returned Trace therefore replays without any possibility of error —
// truncated, corrupt, or adversarial bytes are rejected here with a
// classified error (ErrTraceCorrupt, ErrTraceVersion, ErrTraceKind) and
// never panic.
func OpenTrace(data []byte) (*Trace, error) {
	rest := data
	if len(rest) < len(traceMagic)+1 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the container preamble", ErrTraceCorrupt, len(data))
	}
	if string(rest[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrTraceCorrupt)
	}
	rest = rest[len(traceMagic):]
	if rest[0] != traceVersion {
		return nil, fmt.Errorf("%w: file version %d, this binary reads %d", ErrTraceVersion, rest[0], traceVersion)
	}
	rest = rest[1:]

	hlen, n := binary.Uvarint(rest)
	if n <= 0 || hlen > maxTraceHeaderBytes || hlen > uint64(len(rest[n:])) {
		return nil, fmt.Errorf("%w: bad header length", ErrTraceCorrupt)
	}
	rest = rest[n:]
	hdrBytes := rest[:hlen]
	rest = rest[hlen:]

	plen, n := binary.Uvarint(rest)
	if n <= 0 || plen > uint64(len(rest[n:])) {
		return nil, fmt.Errorf("%w: bad payload length", ErrTraceCorrupt)
	}
	rest = rest[n:]
	payload := rest[:plen]
	rest = rest[plen:]

	if len(rest) != sha256.Size {
		return nil, fmt.Errorf("%w: %d trailing bytes, want a %d-byte checksum", ErrTraceCorrupt, len(rest), sha256.Size)
	}
	sum := sha256.Sum256(data[:len(data)-sha256.Size])
	if !bytes.Equal(sum[:], rest) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrTraceCorrupt)
	}

	var hdr TraceHeader
	dec := json.NewDecoder(bytes.NewReader(hdrBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTraceCorrupt, err)
	}
	if hdr.Kind != TraceKind {
		return nil, fmt.Errorf("%w: file holds %q, this binary reads %q", ErrTraceKind, hdr.Kind, TraceKind)
	}
	// Every record is at least 5 bytes, so a count the payload cannot
	// hold fails before the record walk.
	if hdr.Count > uint64(len(payload))/5 {
		return nil, fmt.Errorf("%w: header counts %d records but the payload holds at most %d", ErrTraceCorrupt, hdr.Count, len(payload)/5)
	}

	t := &Trace{header: hdr, payload: payload, digest: hex.EncodeToString(sum[:])}
	// Full validation decode: after this walk, replay cannot fail.
	var cur traceCursor
	for i := uint64(0); i < hdr.Count; i++ {
		if _, err := cur.next(payload); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	if cur.off != len(payload) {
		return nil, fmt.Errorf("%w: %d payload bytes after the last record", ErrTraceCorrupt, len(payload)-cur.off)
	}
	return t, nil
}

// OpenTraceFile reads and verifies the trace at path. A missing file
// satisfies errors.Is(err, os.ErrNotExist); a file failing verification
// is quarantined — renamed to path+".corrupt", counted in
// TracesQuarantined — and the classified error is returned, mirroring
// the snapshot loader's contract.
func OpenTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := OpenTrace(data)
	if err != nil {
		quarantinedTraces.Add(1)
		if renameErr := os.Rename(path, path+".corrupt"); renameErr != nil {
			os.Remove(path)
		}
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	return t, nil
}

// WriteTraceFile writes sealed trace bytes to path atomically (temp
// file + rename), so a killed process never leaves a torn trace where
// OpenTraceFile will find it.
func WriteTraceFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// TraceFileDigest fully verifies the trace at path and returns its
// content digest — what boundaries (CLIs, the service) use to resolve a
// path-only trace reference into a content-addressed one.
func TraceFileDigest(path string) (string, error) {
	t, err := OpenTraceFile(path)
	if err != nil {
		return "", err
	}
	return t.digest, nil
}

// Digest is the trace's content address: the hex SHA-256 the trailer
// sealed. Two files with equal digests carry byte-identical streams.
func (t *Trace) Digest() string { return t.digest }

// Header returns the trace's metadata block.
func (t *Trace) Header() TraceHeader { return t.header }

// Count is the number of recorded instructions.
func (t *Trace) Count() uint64 { return t.header.Count }

// NewReader returns a fresh replay cursor at the start of the trace.
// Readers are independent; a Trace may serve many concurrently.
func (t *Trace) NewReader() *TraceReader {
	return &TraceReader{t: t}
}

// traceCursor decodes records sequentially from a payload. next returns
// an error only on bytes OpenTrace has not validated; on a verified
// payload it cannot fail.
type traceCursor struct {
	off      int
	prevPC   uint64
	prevAddr uint64
}

func (c *traceCursor) next(payload []byte) (isa.Inst, error) {
	rest := payload[c.off:]
	if len(rest) < 1 {
		return isa.Inst{}, fmt.Errorf("%w: truncated record", ErrTraceCorrupt)
	}
	flags := rest[0]
	if flags&0xC0 != 0 {
		return isa.Inst{}, fmt.Errorf("%w: reserved flag bits set", ErrTraceCorrupt)
	}
	op := isa.Op(flags & 0x0F)
	if int(op) >= isa.NumOps {
		return isa.Inst{}, fmt.Errorf("%w: op %d out of range", ErrTraceCorrupt, op)
	}
	rest = rest[1:]
	dPC, n := binary.Varint(rest)
	if n <= 0 {
		return isa.Inst{}, fmt.Errorf("%w: bad pc delta", ErrTraceCorrupt)
	}
	rest = rest[n:]
	if len(rest) < 3 {
		return isa.Inst{}, fmt.Errorf("%w: truncated register operands", ErrTraceCorrupt)
	}
	dst, src1, src2 := rest[0], rest[1], rest[2]
	if dst > isa.NumLogicalRegs || src1 > isa.NumLogicalRegs || src2 > isa.NumLogicalRegs {
		return isa.Inst{}, fmt.Errorf("%w: register out of range", ErrTraceCorrupt)
	}
	rest = rest[3:]
	c.prevPC += uint64(dPC)
	inst := isa.Inst{
		PC:     c.prevPC,
		Op:     op,
		Dst:    int16(dst) - 1,
		Src1:   int16(src1) - 1,
		Src2:   int16(src2) - 1,
		Taken:  flags&(1<<4) != 0,
		Kernel: flags&(1<<5) != 0,
	}
	if op.IsMem() {
		dAddr, n := binary.Varint(rest)
		if n <= 0 {
			return isa.Inst{}, fmt.Errorf("%w: bad address delta", ErrTraceCorrupt)
		}
		rest = rest[n:]
		if len(rest) < 1 {
			return isa.Inst{}, fmt.Errorf("%w: truncated access size", ErrTraceCorrupt)
		}
		c.prevAddr += uint64(dAddr)
		inst.Addr = c.prevAddr
		inst.Size = rest[0]
		rest = rest[1:]
	}
	c.off = len(payload) - len(rest)
	return inst, nil
}

// TraceReader replays a verified Trace as a workload Source. It ends:
// once Count records have been produced, Next returns (zero, false)
// forever, the core's front end sees end-of-trace, and the run winds
// down cleanly — so a trace must be recorded with enough slack beyond
// the windows it will drive (see the sim package's recorder).
type TraceReader struct {
	t   *Trace
	cur traceCursor
	n   uint64
}

// Next implements isa.Reader.
func (r *TraceReader) Next() (isa.Inst, bool) {
	if r.n >= r.t.header.Count {
		return isa.Inst{}, false
	}
	inst, err := r.cur.next(r.t.payload)
	if err != nil {
		// Unreachable: OpenTrace validated every record.
		panic(fmt.Sprintf("workload: verified trace failed to decode: %v", err))
	}
	r.n++
	return inst, true
}

// Warm implements Source: it advances the cursor exactly as n calls of
// Next would, reporting memory addresses and packed branch outcomes. A
// trace that ends inside the window reports what remained.
func (r *TraceReader) Warm(n int, addrs, branches []uint64) (na, nb int) {
	for i := 0; i < n; i++ {
		inst, ok := r.Next()
		if !ok {
			break
		}
		switch {
		case inst.Op.IsMem():
			addrs[na] = inst.Addr
			na++
		case inst.Op == isa.Branch:
			var taken uint64
			if inst.Taken {
				taken = 1
			}
			branches[nb] = inst.PC<<1 | taken
			nb++
		}
	}
	return na, nb
}

// Fill implements Source, zero-padding past the end of the trace (the
// batch kernel bounds its reads with Len).
func (r *TraceReader) Fill(dst []isa.Inst) {
	for i := range dst {
		dst[i], _ = r.Next()
	}
}

// Emitted reports the records consumed so far.
func (r *TraceReader) Emitted() uint64 { return r.n }

// Len reports the total number of records in the underlying trace.
func (r *TraceReader) Len() uint64 { return r.t.header.Count }

// Digest returns the underlying trace's content digest.
func (r *TraceReader) Digest() string { return r.t.digest }

// Header returns the underlying trace's metadata block.
func (r *TraceReader) Header() TraceHeader { return r.t.header }

// Regions implements Source from the recorded header.
func (r *TraceReader) Regions() []RegionInfo { return r.t.header.Regions }

// ExportState implements Source. A trace cursor's whole mutable state
// is its position; the digest pins which trace the position indexes.
func (r *TraceReader) ExportState() GeneratorState {
	return GeneratorState{N: r.n, TraceDigest: r.t.digest}
}

// ImportState implements Source: it verifies the state belongs to this
// trace and re-seeks by decoding from the start (positions are byte
// offsets only the walk can reconstruct; an O(n) seek is noise next to
// the simulation resuming behind it).
func (r *TraceReader) ImportState(st GeneratorState) error {
	if st.TraceDigest == "" {
		return fmt.Errorf("workload: snapshot was not recorded from a trace (no trace digest)")
	}
	if st.TraceDigest != r.t.digest {
		return fmt.Errorf("workload: snapshot belongs to trace %.12s…, this trace is %.12s…", st.TraceDigest, r.t.digest)
	}
	if st.N > r.t.header.Count {
		return fmt.Errorf("workload: snapshot position %d beyond the trace's %d records", st.N, r.t.header.Count)
	}
	r.cur = traceCursor{}
	r.n = 0
	for r.n < st.N {
		if _, ok := r.Next(); !ok {
			return fmt.Errorf("workload: trace ended at %d seeking to %d", r.n, st.N)
		}
	}
	return nil
}
