package workload

import "fmt"

// Pattern selects how addresses are drawn within a memory region.
type Pattern int

const (
	// Stream walks the region sequentially with a fixed stride,
	// wrapping at the end — array traversals in floating point codes.
	// A stream touches each cache line once per pass, so it misses at
	// line-granularity in any cache smaller than the region and stops
	// missing entirely once the region fits.
	Stream Pattern = iota
	// Hot draws addresses with a strong skew toward the front of the
	// region (an exponential mixture of prefix sizes), modeling the
	// hot-and-cold behaviour of integer codes: miss rate falls smoothly
	// as growing caches capture successively cooler subsets.
	Hot
	// Uniform draws addresses uniformly over the region — large hash
	// tables and database buffer pools. Hit ratio grows roughly
	// linearly with the fraction of the region that fits.
	Uniform
	// Chase draws addresses uniformly but serializes consecutive
	// accesses through a load-to-load dependence (pointer chasing in
	// heaps and linked structures).
	Chase
)

func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case Hot:
		return "hot"
	case Uniform:
		return "uniform"
	case Chase:
		return "chase"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Region is one component of a benchmark's synthetic address space.
type Region struct {
	Name    string
	Bytes   uint64
	Weight  float64 // relative probability a memory reference targets this region
	Pattern Pattern
	Stride  uint64 // Stream stride in bytes; defaults to 8

	// HotBytes is the size of the heavily reused prefix for Hot/Chase
	// regions (defaults to Bytes/16). References concentrate there with
	// an exponential skew, so even very small caches capture most of
	// them.
	HotBytes uint64
	// ColdFrac is the probability a Hot/Chase reference instead falls
	// uniformly over the whole region (default 0.1). This produces the
	// smooth miss-rate decline with cache size: a cache holding
	// fraction f of the region converts roughly f of the cold
	// references into hits.
	ColdFrac float64

	base   uint64
	cursor uint64

	// Derived values cached on first use (see prepare): integer draw
	// thresholds and power-of-two masks so the address hot path does no
	// float math and no division.
	prepared     bool
	strideVal    uint64 // Stride with the default applied
	coldThresh   uint64 // boolThreshold(ColdFrac default)
	hotVal       uint64 // HotBytes with defaults/clamps applied
	spanMin      uint64 // hotVal >> (hotLevels-1), clamped
	slotsAccess  uint64 // Bytes / accessGranularity
	slotsMask    uint64 // slotsAccess-1 when a power of two, else 0
	scatterSlots uint64 // Bytes / hotChunkBytes
	scatterMask  uint64 // scatterSlots-1 when a power of two, else 0
	bytesMask    uint64 // Bytes-1 when a power of two, else 0
}

// prepare caches the derived constants next() needs, exactly as the
// per-call code used to compute them.
func (rg *Region) prepare() {
	rg.prepared = true
	rg.strideVal = rg.Stride
	if rg.strideVal == 0 {
		rg.strideVal = accessGranularity
	}
	cold := rg.ColdFrac
	if cold == 0 {
		cold = 0.1
	}
	rg.coldThresh = boolThreshold(cold)
	hot := rg.HotBytes
	if hot == 0 {
		hot = rg.Bytes / 16
	}
	if hot < accessGranularity {
		hot = accessGranularity
	}
	rg.hotVal = hot
	span := hot >> (hotLevels - 1)
	if span < accessGranularity {
		span = accessGranularity
	}
	rg.spanMin = span
	rg.slotsAccess = rg.Bytes / accessGranularity
	if rg.slotsAccess > 0 && rg.slotsAccess&(rg.slotsAccess-1) == 0 {
		rg.slotsMask = rg.slotsAccess - 1
	}
	rg.scatterSlots = rg.Bytes / hotChunkBytes
	if rg.scatterSlots > 0 && rg.scatterSlots&(rg.scatterSlots-1) == 0 {
		rg.scatterMask = rg.scatterSlots - 1
	}
	if rg.Bytes > 0 && rg.Bytes&(rg.Bytes-1) == 0 {
		rg.bytesMask = rg.Bytes - 1
	}
}

// hotChunkBytes is the spatial granularity of the hot set. Hot data is
// not contiguous in a real address space — it is the popular fields of
// many scattered objects — so the generator scatters the hot set across
// the region in chunks of this size. The scattering is what gives long
// cache lines (the DRAM row-buffer cache's 512-byte lines) their
// conflict-miss problem: a hot set that fits a 16 KB cache with 32-byte
// lines touches far more distinct 512-byte lines than a contiguous
// prefix would.
const hotChunkBytes = 128

// scatterChunk maps a hot-set chunk index to a stable pseudo-random
// chunk slot within the region, keyed by the region's base address.
func (rg *Region) scatterChunk(chunk uint64) uint64 {
	slots := rg.scatterSlots
	if slots <= 1 {
		return 0
	}
	x := chunk*0x9E3779B97F4A7C15 ^ rg.base
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	if rg.scatterMask != 0 {
		return x & rg.scatterMask
	}
	return x % slots
}

// accessGranularity aligns all generated addresses.
const accessGranularity = 8

// hotLevels bounds the exponential prefix mixture of the Hot pattern:
// the hottest span is HotBytes >> (hotLevels-1). Six levels balance two
// calibration targets: the innermost span must not be so tiny that the
// 1 KB line buffer swallows nearly every reference (published
// line-buffer hit rates are 50-70% of loads, not 85%+), and the skew
// must stay strong enough that 4 KB caches keep the paper's modest
// small-cache miss rates.
const hotLevels = 6

// halfThresh is boolThreshold(0.5): 0.5 * 2^53 exactly.
const halfThresh = 1 << 52

// uniformSlot draws a uniform access-granule offset, equivalent to
// Intn(Bytes/accessGranularity) but using the precomputed mask when the
// slot count is a power of two (the same fast path Intn takes).
func (rg *Region) uniformSlot(r *Rand) uint64 {
	u := r.Uint64()
	if rg.slotsMask != 0 {
		return u & rg.slotsMask
	}
	return u % rg.slotsAccess
}

// next draws the next address in the region.
func (rg *Region) next(r *Rand) uint64 {
	if !rg.prepared {
		rg.prepare()
	}
	switch rg.Pattern {
	case Stream:
		a := rg.base + rg.cursor
		rg.cursor += rg.strideVal
		if rg.cursor >= rg.Bytes {
			rg.cursor = 0
		}
		return a
	case Hot, Chase:
		// Two-component mixture. With probability ColdFrac the
		// reference falls uniformly over the whole region (cool data:
		// this is what large caches progressively capture). Otherwise
		// it lands in the hot prefix with an exponential skew toward
		// the front, so small caches capture most of it. Chase shares
		// the distribution (linked structures have hot spines) but is
		// additionally serialized by the generator's dependences.
		// The draws inline Rand.Uint64 (state held in a register across
		// the span loop); the draw sequence is unchanged.
		s := r.s
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		if s*randMult>>11 < rg.coldThresh {
			r.s = s
			return rg.base + rg.uniformSlot(r)*accessGranularity
		}
		hot := rg.hotVal
		span := rg.spanMin
		for span < hot {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			if s*randMult>>11 >= halfThresh {
				break
			}
			span <<= 1
		}
		r.s = s
		if span > hot {
			span = hot
		}
		off := uint64(r.Intn(int(span/accessGranularity))) * accessGranularity
		// Scatter the hot set across the region at chunk granularity so
		// hot bytes are spread over many cache lines, as real heaps are.
		pos := rg.scatterChunk(off/hotChunkBytes)*hotChunkBytes + off%hotChunkBytes
		if rg.bytesMask != 0 {
			pos &= rg.bytesMask
		} else {
			pos %= rg.Bytes
		}
		return rg.base + pos
	case Uniform:
		return rg.base + rg.uniformSlot(r)*accessGranularity
	default:
		return rg.base
	}
}

// layout assigns non-overlapping base addresses to regions, separating
// user and kernel halves of the synthetic physical address space. Bases
// are staggered across cache sets (a real address space does not align
// every object to the same set); without the stagger every region's hot
// prefix would collide in the lowest-index sets of small caches and
// conflict misses would swamp the capacity behaviour being modeled.
func layout(user, kernel []*Region) {
	const userBase = 0x0000_0000_1000_0000
	const kernelBase = 0x0000_8000_0000_0000
	const guard = 1 << 20
	stagger := func(i int) uint64 {
		return uint64(i) * 10400 * 32 % (1 << 20) // line-aligned, spread over 1 MB of sets
	}
	base := uint64(userBase)
	for i, rg := range user {
		rg.base = base + stagger(i)
		base = rg.base + align(rg.Bytes) + guard
	}
	base = kernelBase
	for i, rg := range kernel {
		rg.base = base + stagger(i+3)
		base = rg.base + align(rg.Bytes) + guard
	}
}

func align(b uint64) uint64 {
	const a = 1 << 12
	return (b + a - 1) &^ (a - 1)
}

// pick chooses a region by weight.
func pick(r *Rand, regions []*Region, totalWeight float64) *Region {
	x := r.Float64() * totalWeight
	for _, rg := range regions {
		x -= rg.Weight
		if x < 0 {
			return rg
		}
	}
	return regions[len(regions)-1]
}

func totalWeight(regions []*Region) float64 {
	var t float64
	for _, rg := range regions {
		t += rg.Weight
	}
	return t
}
