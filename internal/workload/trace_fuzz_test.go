package workload

import (
	"errors"
	"os"
	"testing"
)

// FuzzTraceDecode throws arbitrary bytes at the trace opener. The
// contract under fuzz: OpenTrace either returns a classified error
// (ErrTraceCorrupt / ErrTraceVersion / ErrTraceKind) or yields a Trace
// that replays to completion without panicking and with a stable
// digest. The corpus seeds from real recorded fixtures so mutations
// explore the interesting frontier — mostly-valid files with flipped
// framing, lengths, deltas, and checksums.
func FuzzTraceDecode(f *testing.F) {
	for _, seed := range []struct {
		bench string
		n     uint64
	}{
		{"compress", 0},
		{"compress", 1},
		{"compress", 64},
		{"vcs", 257},
		{"database", 1000},
	} {
		data, err := RecordTrace(seed.bench, 1, seed.n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("HBCTRACE"))
	f.Add([]byte("HBCTRACE\x01\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := OpenTrace(data)
		if err != nil {
			if !errors.Is(err, ErrTraceCorrupt) && !errors.Is(err, ErrTraceVersion) && !errors.Is(err, ErrTraceKind) {
				t.Fatalf("unclassified error: %v", err)
			}
			return
		}
		// A trace that opened must replay fully without panicking:
		// OpenTrace's validation pass is the only gate between
		// adversarial bytes and the simulator core.
		r := tr.NewReader()
		var n uint64
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
			if n > tr.Count() {
				t.Fatalf("reader produced more than the %d records in the header", tr.Count())
			}
		}
		if n != tr.Count() {
			t.Fatalf("reader produced %d records, header counts %d", n, tr.Count())
		}
		if len(tr.Digest()) != 64 {
			t.Fatalf("digest %q is not hex sha-256", tr.Digest())
		}
	})
}

// FuzzTraceDecode's file-level twin is cheaper to exercise once than to
// fuzz: quarantine must never fire for valid bytes.
func TestOpenTraceFileKeepsValidFiles(t *testing.T) {
	data, err := RecordTrace("compress", 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ok.trace"
	if err := WriteTraceFile(path, data); err != nil {
		t.Fatal(err)
	}
	before := TracesQuarantined()
	if _, err := OpenTraceFile(path); err != nil {
		t.Fatal(err)
	}
	if TracesQuarantined() != before {
		t.Fatal("valid file was quarantined")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("valid file moved: %v", err)
	}
}
