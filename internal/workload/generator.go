package workload

import (
	"fmt"

	"hbcache/internal/isa"
)

// slot is one static instruction of a synthesized loop body.
type slot struct {
	op       isa.Op
	region   int // region index for memory ops; -1 otherwise
	chase    bool
	dataDep  bool // data-dependent branch
	loopBack bool // loop-closing branch (last slot)
	pc       uint64
}

// tmpl is a static inner loop: a body of slots replayed for a trip count.
type tmpl struct {
	kernel bool
	slots  []slot
}

// templatesPerSpace is how many distinct static loops are synthesized
// for each of the user and kernel address spaces.
const templatesPerSpace = 6

// regRingSize is the window of recent destination registers used to
// build dependence edges; it matches the processor's 64-entry window so
// generated parallelism is actually harvestable.
const regRingSize = 64

// Generator synthesizes the dynamic instruction stream of one benchmark.
// It implements isa.Reader and never ends (callers run for a fixed
// instruction budget).
type Generator struct {
	model *Model
	rng   *Rand

	userRegions []*Region
	kernRegions []*Region
	userWeight  float64
	kernWeight  float64

	userT []tmpl
	kernT []tmpl

	cur       *tmpl
	slotIdx   int
	itersLeft int

	n       uint64 // dynamic instruction count
	nRegMod uint64 // n % (isa.NumLogicalRegs-2), kept incrementally
	ring    [regRingSize]int16
	// chaseUser/chaseKern track, per region index, the register holding
	// the current chain pointer (isa.NoReg when no link exists yet).
	chaseUser   []int16
	chaseKern   []int16
	lastLoadDst int16

	// Integer draw thresholds precomputed from the model (see
	// boolThreshold/geomThreshold): the per-instruction hot path
	// compares raw 53-bit draws against these instead of doing float
	// conversions. depOne/iterOne mark degenerate means (<= 1), where
	// Geometric returns 1 without drawing.
	depThresh       uint64
	depOne          bool
	iterThresh      uint64
	iterOne         bool
	kernelThresh    uint64
	dataTakenThresh uint64

	loads, stores, branches, kernel, fpops, mispredictable uint64
}

// New returns a generator for the named benchmark, deterministically
// seeded: the same (name, seed) pair always produces the same stream.
func New(name string, seed uint64) (*Generator, error) {
	m, err := ModelFor(name)
	if err != nil {
		return nil, err
	}
	return NewFromModel(m, seed), nil
}

// NewFromModel builds a generator from an explicit model, for tests and
// custom workloads.
func NewFromModel(m *Model, seed uint64) *Generator {
	g := &Generator{
		model:       m,
		rng:         NewRand(seed ^ hashName(m.Name)),
		lastLoadDst: isa.NoReg,
	}
	for i := range m.Regions {
		r := m.Regions[i] // copy: runtime cursors must not alias the spec
		g.userRegions = append(g.userRegions, &r)
	}
	for i := range m.KernelRegions {
		r := m.KernelRegions[i]
		g.kernRegions = append(g.kernRegions, &r)
	}
	layout(g.userRegions, g.kernRegions)
	g.chaseUser = make([]int16, len(g.userRegions))
	g.chaseKern = make([]int16, len(g.kernRegions))
	for i := range g.chaseUser {
		g.chaseUser[i] = isa.NoReg
	}
	for i := range g.chaseKern {
		g.chaseKern[i] = isa.NoReg
	}
	g.depOne = m.DepMean <= 1
	if !g.depOne {
		g.depThresh = geomThreshold(m.DepMean)
	}
	g.iterOne = m.MeanIterations <= 1
	if !g.iterOne {
		g.iterThresh = geomThreshold(m.MeanIterations)
	}
	g.kernelThresh = boolThreshold(m.kernelFrac())
	g.dataTakenThresh = boolThreshold(m.DataBranchTakenProb)
	g.userWeight = totalWeight(g.userRegions)
	g.kernWeight = totalWeight(g.kernRegions)
	for i := 0; i < templatesPerSpace; i++ {
		g.userT = append(g.userT, g.buildTemplate(i, false))
		if m.kernelFrac() > 0 {
			g.kernT = append(g.kernT, g.buildTemplate(i, true))
		}
	}
	return g
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// pickRegion chooses the region for a memory slot. Loads pick a Chase
// region with probability ChaseFrac (when one exists); everything else
// follows the weight mixture over non-chase regions.
func (g *Generator) pickRegion(kernel bool, wantChase bool) int {
	regions := g.userRegions
	if kernel {
		regions = g.kernRegions
	}
	var chase, other []*Region
	for _, r := range regions {
		if r.Pattern == Chase {
			chase = append(chase, r)
		} else {
			other = append(other, r)
		}
	}
	var pool []*Region
	if wantChase && len(chase) > 0 {
		pool = chase
	} else if len(other) > 0 {
		pool = other
	} else {
		pool = regions
	}
	rg := pick(g.rng, pool, totalWeight(pool))
	for i, r := range regions {
		if r == rg {
			return i
		}
	}
	return 0
}

// buildTemplate synthesizes one static inner loop whose operation mix
// matches the model's Table 2 fractions in expectation.
func (g *Generator) buildTemplate(idx int, kernel bool) tmpl {
	m := g.model
	bodyLen := 12 + g.rng.Intn(10) // 12..21 instructions
	nLoad := int(float64(bodyLen)*m.Paper.LoadPct/100 + 0.5)
	nStore := int(float64(bodyLen)*m.Paper.StorePct/100 + 0.5)
	nBranch := int(float64(bodyLen)*m.BranchFrac + 0.5)
	if nBranch < 1 {
		nBranch = 1
	}
	if nLoad+nStore+nBranch > bodyLen-1 {
		bodyLen = nLoad + nStore + nBranch + 2
	}

	// Lay out op kinds the way compiled loop bodies do: operand loads
	// cluster at the top of the body, computation follows, stores write
	// results near the end, and the loop-closing branch is last. The
	// clustering matters for timing fidelity — bursts of loads issued
	// back to back are what stress cache ports in a wide machine; a
	// uniform shuffle would understate port pressure. A small amount of
	// local shuffling keeps bodies from being perfectly rigid.
	kinds := make([]isa.Op, 0, bodyLen)
	for i := 0; i < nLoad; i++ {
		kinds = append(kinds, isa.Load)
	}
	nALU := bodyLen - 1 - nLoad - nStore - (nBranch - 1)
	for i := 0; i < nALU; i++ {
		kinds = append(kinds, g.pickALUOp())
	}
	for i := 0; i < nBranch-1; i++ {
		kinds = append(kinds, isa.Branch)
	}
	for i := 0; i < nStore; i++ {
		kinds = append(kinds, isa.Store)
	}
	// Local shuffle: swap each slot with a neighbour up to two away.
	for i := range kinds {
		j := i + g.rng.Intn(3) - 1
		if j >= 0 && j < len(kinds) {
			kinds[i], kinds[j] = kinds[j], kinds[i]
		}
	}
	kinds = append(kinds, isa.Branch) // loop-back

	base := uint64(0x0040_0000 + idx<<12)
	if kernel {
		base |= 0x8000_0000_0000
	}
	slots := make([]slot, len(kinds))
	for i, op := range kinds {
		s := slot{op: op, region: -1, pc: base + uint64(i)*4}
		switch op {
		case isa.Load:
			wantChase := g.rng.Bool(m.ChaseFrac)
			s.region = g.pickRegion(kernel, wantChase)
			regions := g.userRegions
			if kernel {
				regions = g.kernRegions
			}
			s.chase = regions[s.region].Pattern == Chase
		case isa.Store:
			s.region = g.pickRegion(kernel, false)
		case isa.Branch:
			if i == len(kinds)-1 {
				s.loopBack = true
			} else {
				s.dataDep = g.rng.Bool(m.DataBranchFrac)
			}
		}
		slots[i] = s
	}
	return tmpl{kernel: kernel, slots: slots}
}

func (g *Generator) pickALUOp() isa.Op {
	if g.rng.Bool(g.model.FPFrac) {
		switch {
		case g.rng.Bool(0.05):
			return isa.FPDiv
		case g.rng.Bool(0.45):
			return isa.FPMul
		default:
			return isa.FPAdd
		}
	}
	switch {
	case g.rng.Bool(0.005):
		return isa.IntDiv
	case g.rng.Bool(0.05):
		return isa.IntMul
	default:
		return isa.IntALU
	}
}

// nextTemplate selects the next inner loop to run, entering kernel mode
// with the model's kernel fraction.
func (g *Generator) nextTemplate() {
	if len(g.kernT) > 0 && g.rng.Uint64()>>11 < g.kernelThresh {
		g.cur = &g.kernT[g.rng.Intn(len(g.kernT))]
	} else {
		g.cur = &g.userT[g.rng.Intn(len(g.userT))]
	}
	g.slotIdx = 0
	iters := 1
	if !g.iterOne {
		for g.rng.Uint64()>>11 > g.iterThresh && iters < 1<<20 {
			iters++
		}
	}
	g.itersLeft = iters
}

// dstReg allocates the next destination register, rotating through the
// logical space and recording it in the dependence ring. nRegMod is
// n % (NumLogicalRegs-2) maintained incrementally, since the modulus is
// not a power of two and this runs for most instructions.
func (g *Generator) dstReg() int16 {
	d := int16(2 + g.nRegMod)
	g.ring[g.n%regRingSize] = d
	return d
}

// srcReg picks a source register a geometric dependence distance back.
// The geometric draw inlines Rand.Uint64 so the rng state stays in a
// register across the loop (this is the hottest draw in the stream:
// roughly DepMean draws per source operand); the draw sequence is
// exactly Uint64()>>11 > depThresh repeated, as before.
func (g *Generator) srcReg() int16 {
	k := uint64(1)
	if !g.depOne {
		r := g.rng
		s := r.s
		for {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			if s*randMult>>11 <= g.depThresh || k >= 1<<20 {
				break
			}
			k++
		}
		r.s = s
	}
	if k > g.n || k > regRingSize {
		return isa.NoReg
	}
	return g.ring[(g.n-k)%regRingSize]
}

// Next implements isa.Reader; the stream is unbounded so ok is always
// true.
func (g *Generator) Next() (isa.Inst, bool) {
	if g.cur == nil || g.slotIdx >= len(g.cur.slots) {
		if g.cur != nil {
			g.itersLeft--
			if g.itersLeft > 0 {
				g.slotIdx = 0
			} else {
				g.nextTemplate()
			}
		} else {
			g.nextTemplate()
		}
	}
	s := &g.cur.slots[g.slotIdx]
	g.slotIdx++

	inst := isa.Inst{PC: s.pc, Op: s.op, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Kernel: g.cur.kernel}
	regions := g.userRegions
	if g.cur.kernel {
		regions = g.kernRegions
	}
	switch s.op {
	case isa.Load:
		g.loads++
		rg := regions[s.region]
		inst.Addr = rg.next(g.rng)
		inst.Size = accessGranularity
		if s.chase {
			ptrs := g.chaseUser
			if g.cur.kernel {
				ptrs = g.chaseKern
			}
			if p := ptrs[s.region]; p != isa.NoReg {
				inst.Src1 = p
			}
			d := g.dstReg()
			inst.Dst = d
			ptrs[s.region] = d
		} else {
			inst.Src1 = g.srcReg()
			inst.Dst = g.dstReg()
		}
		g.lastLoadDst = inst.Dst
	case isa.Store:
		g.stores++
		rg := regions[s.region]
		inst.Addr = rg.next(g.rng)
		inst.Size = accessGranularity
		inst.Src1 = g.srcReg() // address register
		inst.Src2 = g.srcReg() // data register
	case isa.Branch:
		g.branches++
		if s.loopBack {
			inst.Taken = g.itersLeft > 1
			inst.Src1 = g.srcReg()
		} else if s.dataDep {
			g.mispredictable++
			inst.Taken = g.rng.Uint64()>>11 < g.dataTakenThresh
			inst.Src1 = g.lastLoadDst
		} else {
			inst.Taken = true // static control, perfectly learnable
			inst.Src1 = g.srcReg()
		}
	case isa.Jump:
		// Not currently synthesized; kept for completeness.
	default:
		if s.op.IsFP() {
			g.fpops++
		}
		inst.Src1 = g.srcReg()
		inst.Src2 = g.srcReg()
		inst.Dst = g.dstReg()
	}
	if g.cur.kernel {
		g.kernel++
	}
	g.n++
	if g.nRegMod++; g.nRegMod == uint64(isa.NumLogicalRegs-2) {
		g.nRegMod = 0
	}
	return inst, true
}

// Warm drains n instructions from the stream, recording every memory
// reference address in addrs[:na] and every branch outcome in
// branches[:nb], packed pc<<1|taken. Both buffers must hold at least n
// entries. It advances the generator exactly as n calls of Next would —
// every rng draw, dependence-ring, chase-pointer and counter update
// happens identically, so interleaving Warm and Next is
// indistinguishable from calling Next throughout — but it skips
// assembling the isa.Inst records nobody reads during a functional
// cache prewarm, and batching keeps the loop free of calls out.
// TestWarmMatchesNext pins the equivalence.
func (g *Generator) Warm(n int, addrs, branches []uint64) (na, nb int) {
	for i := 0; i < n; i++ {
		if g.cur == nil || g.slotIdx >= len(g.cur.slots) {
			if g.cur != nil {
				g.itersLeft--
				if g.itersLeft > 0 {
					g.slotIdx = 0
				} else {
					g.nextTemplate()
				}
			} else {
				g.nextTemplate()
			}
		}
		s := &g.cur.slots[g.slotIdx]
		g.slotIdx++

		regions := g.userRegions
		if g.cur.kernel {
			regions = g.kernRegions
		}
		switch s.op {
		case isa.Load:
			g.loads++
			addrs[na] = regions[s.region].next(g.rng)
			na++
			if s.chase {
				ptrs := g.chaseUser
				if g.cur.kernel {
					ptrs = g.chaseKern
				}
				d := g.dstReg()
				ptrs[s.region] = d
				g.lastLoadDst = d
			} else {
				g.srcReg()
				g.lastLoadDst = g.dstReg()
			}
		case isa.Store:
			g.stores++
			addrs[na] = regions[s.region].next(g.rng)
			na++
			g.srcReg()
			g.srcReg()
		case isa.Branch:
			g.branches++
			var taken uint64
			if s.loopBack {
				if g.itersLeft > 1 {
					taken = 1
				}
				g.srcReg()
			} else if s.dataDep {
				g.mispredictable++
				if g.rng.Uint64()>>11 < g.dataTakenThresh {
					taken = 1
				}
			} else {
				taken = 1
				g.srcReg()
			}
			branches[nb] = s.pc<<1 | taken
			nb++
		case isa.Jump:
		default:
			if s.op.IsFP() {
				g.fpops++
			}
			g.srcReg()
			g.srcReg()
			g.dstReg()
		}
		if g.cur.kernel {
			g.kernel++
		}
		g.n++
		if g.nRegMod++; g.nRegMod == uint64(isa.NumLogicalRegs-2) {
			g.nRegMod = 0
		}
	}
	return na, nb
}

// Fill assembles len(dst) instructions into dst, advancing the
// generator exactly as len(dst) calls of Next would. It exists for the
// batch kernel's shared-stream ring buffer, which generates the stream
// once per (benchmark, seed) and lets every lane of a batch read the
// same records; TestFillMatchesNext pins the equivalence.
func (g *Generator) Fill(dst []isa.Inst) {
	for i := range dst {
		dst[i], _ = g.Next()
	}
}

// Emitted returns the number of instructions generated so far.
func (g *Generator) Emitted() uint64 { return g.n }

// MeasuredLoadPct returns the loads emitted as a percentage of all
// instructions, for Table 2 verification.
func (g *Generator) MeasuredLoadPct() float64 { return pct(g.loads, g.n) }

// MeasuredStorePct returns the store percentage of the stream.
func (g *Generator) MeasuredStorePct() float64 { return pct(g.stores, g.n) }

// MeasuredBranchPct returns the branch percentage of the stream.
func (g *Generator) MeasuredBranchPct() float64 { return pct(g.branches, g.n) }

// MeasuredKernelPct returns the percentage of instructions executed in
// kernel mode.
func (g *Generator) MeasuredKernelPct() float64 { return pct(g.kernel, g.n) }

// MeasuredFPPct returns the floating point operation percentage.
func (g *Generator) MeasuredFPPct() float64 { return pct(g.fpops, g.n) }

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Model returns the model the generator was built from.
func (g *Generator) Model() *Model { return g.model }

// RegionInfo describes one laid-out region of the generator's address
// space, for reporting and miss attribution. The JSON tags are part of
// the trace-file header format: recorded traces carry regions so replay
// sweeps the same address space.
type RegionInfo struct {
	Name   string `json:"name"`
	Base   uint64 `json:"base"`
	Bytes  uint64 `json:"bytes"`
	Kernel bool   `json:"kernel,omitempty"`
}

// Regions returns the laid-out address ranges of every region.
func (g *Generator) Regions() []RegionInfo {
	var out []RegionInfo
	for _, r := range g.userRegions {
		out = append(out, RegionInfo{Name: r.Name, Base: r.base, Bytes: r.Bytes})
	}
	for _, r := range g.kernRegions {
		out = append(out, RegionInfo{Name: "k:" + r.Name, Base: r.base, Bytes: r.Bytes, Kernel: true})
	}
	return out
}

var _ isa.Reader = (*Generator)(nil)

// MustNew is New panicking on unknown names, for tables of benchmarks.
func MustNew(name string, seed uint64) *Generator {
	g, err := New(name, seed)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return g
}
