package workload

import "fmt"

// Group is the paper's three-way benchmark taxonomy.
type Group int

const (
	// SPECint are the integer SPEC95 benchmarks: small working sets,
	// little instruction-level parallelism, pointer-rich access.
	SPECint Group = iota
	// SPECfp are the floating point SPEC95 benchmarks: streaming access
	// over large arrays, abundant instruction-level parallelism.
	SPECfp
	// Multiprogramming are the SimOS workloads (pmake, database, VCS):
	// integer character with much larger working sets and a significant
	// kernel component.
	Multiprogramming
)

func (g Group) String() string {
	switch g {
	case SPECint:
		return "SPECint"
	case SPECfp:
		return "SPECfp"
	case Multiprogramming:
		return "multiprogramming"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// Table2 carries the published execution-time and instruction-mix
// percentages of the paper's Table 2, reproduced verbatim so reports can
// print paper-versus-measured columns.
type Table2 struct {
	KernelPct float64 // % of execution time in kernel mode
	UserPct   float64 // % in user mode
	IdlePct   float64 // % idle (excluded from IPC, per the paper)
	LoadPct   float64 // % of instructions that are loads
	StorePct  float64 // % of instructions that are stores
}

// Model is the full parameterization of one synthetic benchmark.
type Model struct {
	Name  string
	Group Group
	Paper Table2

	// Regions hold the user-mode address space mixture; KernelRegions
	// the kernel-mode one.
	Regions       []Region
	KernelRegions []Region

	// DepMean is the mean register dependence distance in instructions:
	// small values serialize the window (integer codes), large values
	// expose parallelism (floating point codes).
	DepMean float64
	// ChaseFrac is the fraction of loads serialized through the
	// previous load of a Chase region (pointer chasing).
	ChaseFrac float64
	// BranchFrac is the fraction of instructions that are conditional
	// branches (including loop-closing branches).
	BranchFrac float64
	// DataBranchFrac is the fraction of those branches whose outcome is
	// data dependent (hard to predict) rather than loop control.
	DataBranchFrac float64
	// DataBranchTakenProb is the taken probability of data-dependent
	// branches.
	DataBranchTakenProb float64
	// MeanIterations is the mean trip count of synthesized inner loops.
	MeanIterations float64
	// FPFrac is the fraction of non-memory, non-branch instructions
	// that are floating point.
	FPFrac float64
}

// kernelFrac returns the fraction of generated (non-idle) instructions
// that run in kernel mode, derived from the published execution-time
// split.
func (m *Model) kernelFrac() float64 {
	busy := m.Paper.KernelPct + m.Paper.UserPct
	if busy <= 0 {
		return 0
	}
	return m.Paper.KernelPct / busy
}

// BenchmarkNames lists the nine benchmarks in the paper's Table 1 order.
func BenchmarkNames() []string {
	return []string{"gcc", "li", "compress", "tomcatv", "su2cor", "apsi", "pmake", "database", "vcs"}
}

// RepresentativeNames lists the benchmark the paper uses to represent
// each group in its per-benchmark figures: gcc for SPECint, tomcatv for
// SPECfp, and database for multiprogramming.
func RepresentativeNames() []string { return []string{"gcc", "tomcatv", "database"} }

// kernelRegions returns the generic operating-system address mixture
// used by benchmarks with a kernel component: kernel text/data is hot,
// plus buffer and page management touching larger structures.
func kernelRegions(dataBytes uint64) []Region {
	return []Region{
		{Name: "kdata", Bytes: 64 << 10, Weight: 0.5, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.05},
		{Name: "kbuf", Bytes: dataBytes, Weight: 0.35, Pattern: Hot, HotBytes: 8 << 10, ColdFrac: 0.12},
		{Name: "kstack", Bytes: 8 << 10, Weight: 0.15, Pattern: Hot, HotBytes: 2 << 10, ColdFrac: 0.02},
	}
}

// Models returns the nine benchmark models keyed by name.
func Models() map[string]*Model {
	ms := []*Model{
		{
			Name: "gcc", Group: SPECint,
			Paper: Table2{KernelPct: 10.0, UserPct: 90.0, IdlePct: 0.0, LoadPct: 28.1, StorePct: 12.2},
			Regions: []Region{
				{Name: "ir", Bytes: 48 << 10, Weight: 0.47, Pattern: Hot, HotBytes: 3 << 10, ColdFrac: 0.02},
				{Name: "stack", Bytes: 6 << 10, Weight: 0.25, Pattern: Hot, HotBytes: 2 << 10, ColdFrac: 0.02},
				{Name: "heap", Bytes: 40 << 10, Weight: 0.20, Pattern: Chase, HotBytes: 4 << 10, ColdFrac: 0.03},
				{Name: "tables", Bytes: 192 << 10, Weight: 0.08, Pattern: Hot, HotBytes: 8 << 10, ColdFrac: 0.08},
			},
			KernelRegions: kernelRegions(96 << 10),
			DepMean:       4.5, ChaseFrac: 0.25,
			BranchFrac: 0.15, DataBranchFrac: 0.22, DataBranchTakenProb: 0.75,
			MeanIterations: 12, FPFrac: 0,
		},
		{
			Name: "li", Group: SPECint,
			Paper: Table2{KernelPct: 0.2, UserPct: 99.8, IdlePct: 0.0, LoadPct: 33.2, StorePct: 13.0},
			Regions: []Region{
				{Name: "cells", Bytes: 20 << 10, Weight: 0.55, Pattern: Chase, HotBytes: 3 << 10, ColdFrac: 0.02},
				{Name: "stack", Bytes: 4 << 10, Weight: 0.30, Pattern: Hot, HotBytes: 1 << 10, ColdFrac: 0.01},
				{Name: "heap", Bytes: 64 << 10, Weight: 0.15, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.04},
			},
			KernelRegions: kernelRegions(32 << 10),
			DepMean:       4.0, ChaseFrac: 0.35,
			BranchFrac: 0.16, DataBranchFrac: 0.20, DataBranchTakenProb: 0.72,
			MeanIterations: 10, FPFrac: 0,
		},
		{
			Name: "compress", Group: SPECint,
			Paper: Table2{KernelPct: 8.4, UserPct: 91.6, IdlePct: 0.0, LoadPct: 34.5, StorePct: 8.0},
			Regions: []Region{
				{Name: "window", Bytes: 24 << 10, Weight: 0.50, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.02},
				{Name: "hashtab", Bytes: 192 << 10, Weight: 0.30, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.06},
				{Name: "io", Bytes: 128 << 10, Weight: 0.05, Pattern: Stream, Stride: 8},
				{Name: "dict", Bytes: 64 << 10, Weight: 0.15, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.05},
			},
			KernelRegions: kernelRegions(64 << 10),
			DepMean:       4.5, ChaseFrac: 0.12,
			BranchFrac: 0.13, DataBranchFrac: 0.25, DataBranchTakenProb: 0.72,
			MeanIterations: 16, FPFrac: 0,
		},
		{
			Name: "tomcatv", Group: SPECfp,
			Paper: Table2{KernelPct: 0.4, UserPct: 99.6, IdlePct: 0.0, LoadPct: 26.9, StorePct: 8.5},
			Regions: []Region{
				// Three mesh arrays streamed concurrently, ~3.3 MB in
				// total: far larger than any on-chip SRAM primary cache
				// (streaming misses persist across the whole 4 KB-1 MB
				// sweep) but resident in a 4 MB second level, which is
				// what lets the paper's tomcatv sustain ~2 IPC despite
				// its stream misses.
				{Name: "meshx", Bytes: 1126 << 10, Weight: 0.15, Pattern: Stream, Stride: 8},
				{Name: "meshy", Bytes: 1126 << 10, Weight: 0.15, Pattern: Stream, Stride: 8},
				{Name: "residx", Bytes: 1126 << 10, Weight: 0.15, Pattern: Stream, Stride: 8},
				// Column-order sweep: consecutive references are a whole
				// mesh row apart, so every reference touches a different
				// cache line. Long (512-byte) lines buy nothing here and
				// the churn evicts the row-buffer cache's useful lines —
				// the paper's conflict-miss story for the DRAM
				// organization. The region fits the 4 MB caches, so the
				// cost is churn, not memory traffic.
				{Name: "colsweep", Bytes: 512 << 10, Weight: 0.10, Pattern: Stream, Stride: 4104},
				// Row working set reused across sweeps: fits from 32 KB.
				{Name: "rows", Bytes: 20 << 10, Weight: 0.35, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.05},
				{Name: "scalars", Bytes: 4 << 10, Weight: 0.10, Pattern: Hot, HotBytes: 1 << 10, ColdFrac: 0.02},
			},
			KernelRegions: kernelRegions(32 << 10),
			DepMean:       12, ChaseFrac: 0.02,
			BranchFrac: 0.05, DataBranchFrac: 0.08, DataBranchTakenProb: 0.70,
			MeanIterations: 64, FPFrac: 0.62,
		},
		{
			Name: "su2cor", Group: SPECfp,
			Paper: Table2{KernelPct: 0.5, UserPct: 99.5, IdlePct: 0.0, LoadPct: 28.0, StorePct: 6.3},
			Regions: []Region{
				// Lattice field arrays streamed together: beyond the
				// SRAM sweep, resident in a 4 MB second level.
				{Name: "gauge", Bytes: 1408 << 10, Weight: 0.07, Pattern: Stream, Stride: 8},
				{Name: "fermion", Bytes: 1408 << 10, Weight: 0.07, Pattern: Stream, Stride: 8},
				// Column-order pass over a lattice slice (see tomcatv's
				// colsweep for why the stride matters).
				{Name: "colsweep", Bytes: 512 << 10, Weight: 0.08, Pattern: Stream, Stride: 2056},
				{Name: "blocks", Bytes: 128 << 10, Weight: 0.55, Pattern: Hot, HotBytes: 6 << 10, ColdFrac: 0.18},
				{Name: "scalars", Bytes: 8 << 10, Weight: 0.23, Pattern: Hot, HotBytes: 2 << 10, ColdFrac: 0.02},
			},
			KernelRegions: kernelRegions(32 << 10),
			DepMean:       12, ChaseFrac: 0.03,
			BranchFrac: 0.06, DataBranchFrac: 0.10, DataBranchTakenProb: 0.70,
			MeanIterations: 48, FPFrac: 0.58,
		},
		{
			Name: "apsi", Group: SPECfp,
			Paper: Table2{KernelPct: 2.2, UserPct: 97.8, IdlePct: 0.0, LoadPct: 40.0, StorePct: 11.7},
			Regions: []Region{
				// Working set that fits entirely at 512 KB: the radical
				// drop at a specific size the paper attributes to
				// floating point codes.
				{Name: "fields", Bytes: 320 << 10, Weight: 0.30, Pattern: Stream, Stride: 8},
				// Vertical sweep through the grid (large stride, one
				// line touched per reference).
				{Name: "colsweep", Bytes: 128 << 10, Weight: 0.06, Pattern: Stream, Stride: 4104},
				{Name: "slices", Bytes: 72 << 10, Weight: 0.39, Pattern: Hot, HotBytes: 6 << 10, ColdFrac: 0.06},
				{Name: "scalars", Bytes: 8 << 10, Weight: 0.25, Pattern: Hot, HotBytes: 2 << 10, ColdFrac: 0.02},
			},
			KernelRegions: kernelRegions(32 << 10),
			DepMean:       12, ChaseFrac: 0.03,
			BranchFrac: 0.07, DataBranchFrac: 0.12, DataBranchTakenProb: 0.68,
			MeanIterations: 40, FPFrac: 0.55,
		},
		{
			Name: "pmake", Group: Multiprogramming,
			Paper: Table2{KernelPct: 8.9, UserPct: 86.0, IdlePct: 5.1, LoadPct: 25.8, StorePct: 11.9},
			Regions: []Region{
				{Name: "proc1", Bytes: 192 << 10, Weight: 0.30, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.05},
				{Name: "proc2", Bytes: 192 << 10, Weight: 0.30, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.05},
				{Name: "shared", Bytes: 96 << 10, Weight: 0.20, Pattern: Chase, HotBytes: 4 << 10, ColdFrac: 0.04},
				{Name: "files", Bytes: 512 << 10, Weight: 0.20, Pattern: Hot, HotBytes: 6 << 10, ColdFrac: 0.10},
			},
			KernelRegions: kernelRegions(256 << 10),
			DepMean:       4.5, ChaseFrac: 0.22,
			BranchFrac: 0.14, DataBranchFrac: 0.25, DataBranchTakenProb: 0.72,
			MeanIterations: 12, FPFrac: 0,
		},
		{
			Name: "database", Group: Multiprogramming,
			Paper: Table2{KernelPct: 18.4, UserPct: 17.0, IdlePct: 64.6, LoadPct: 24.8, StorePct: 13.6},
			Regions: []Region{
				// The buffer pool dwarfs every SRAM cache in the sweep:
				// database keeps a high miss rate even at 1 MB.
				// The buffer pool dwarfs every primary cache in the
				// sweep but fits the 4 MB second-level caches (both the
				// off-chip L2 and the on-chip DRAM), as the paper's
				// TPC-B-style working set did.
				{Name: "bufpool", Bytes: 3 << 20, Weight: 0.05, Pattern: Uniform},
				{Name: "locks", Bytes: 96 << 10, Weight: 0.42, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.03},
				{Name: "btree", Bytes: 768 << 10, Weight: 0.30, Pattern: Chase, HotBytes: 8 << 10, ColdFrac: 0.08},
				{Name: "log", Bytes: 256 << 10, Weight: 0.13, Pattern: Stream, Stride: 8},
				{Name: "meta", Bytes: 32 << 10, Weight: 0.10, Pattern: Hot, HotBytes: 4 << 10, ColdFrac: 0.03},
			},
			KernelRegions: kernelRegions(512 << 10),
			DepMean:       4.5, ChaseFrac: 0.28,
			BranchFrac: 0.14, DataBranchFrac: 0.28, DataBranchTakenProb: 0.70,
			MeanIterations: 12, FPFrac: 0,
		},
		{
			Name: "vcs", Group: Multiprogramming,
			Paper: Table2{KernelPct: 9.9, UserPct: 90.1, IdlePct: 0.0, LoadPct: 25.7, StorePct: 15.1},
			Regions: []Region{
				{Name: "netlist", Bytes: 1 << 20, Weight: 0.40, Pattern: Hot, HotBytes: 8 << 10, ColdFrac: 0.08},
				{Name: "events", Bytes: 256 << 10, Weight: 0.30, Pattern: Chase, HotBytes: 6 << 10, ColdFrac: 0.05},
				{Name: "values", Bytes: 128 << 10, Weight: 0.30, Pattern: Hot, HotBytes: 6 << 10, ColdFrac: 0.04},
			},
			KernelRegions: kernelRegions(128 << 10),
			DepMean:       5.0, ChaseFrac: 0.20,
			BranchFrac: 0.13, DataBranchFrac: 0.25, DataBranchTakenProb: 0.72,
			MeanIterations: 12, FPFrac: 0,
		},
	}
	out := make(map[string]*Model, len(ms))
	for _, m := range ms {
		out[m.Name] = m
	}
	return out
}

// ModelFor returns the model for a benchmark name.
func ModelFor(name string) (*Model, error) {
	m, ok := Models()[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, BenchmarkNames())
	}
	return m, nil
}
