package workload

import "fmt"

// GeneratorState is the serializable mutable state of a Generator. The
// static structure — the model, region layout, and synthesized loop
// templates — is deterministically rebuilt from (benchmark, seed) by
// New, so a checkpoint records only what the dynamic stream has changed
// since construction: the RNG, the current-template cursor, the
// dependence ring, per-region chase pointers and stream cursors, and
// the mix counters. ImportState onto a freshly built generator for the
// same (benchmark, seed) makes the next instruction bit-identical to
// what the exported generator would have produced.
type GeneratorState struct {
	RNG uint64 `json:"rng"`

	// CurIndex identifies the template cur points at within userT or
	// kernT (selected by CurKernel); -1 means no template is active yet.
	CurIndex  int  `json:"cur_index"`
	CurKernel bool `json:"cur_kernel"`
	SlotIdx   int  `json:"slot_idx"`
	ItersLeft int  `json:"iters_left"`

	N           uint64  `json:"n"`
	NRegMod     uint64  `json:"n_reg_mod"`
	Ring        []int16 `json:"ring"`
	ChaseUser   []int16 `json:"chase_user"`
	ChaseKern   []int16 `json:"chase_kern"`
	LastLoadDst int16   `json:"last_load_dst"`

	// UserCursors/KernCursors are the per-region Stream cursors (the
	// only mutable per-region field).
	UserCursors []uint64 `json:"user_cursors"`
	KernCursors []uint64 `json:"kern_cursors"`

	Loads          uint64 `json:"loads"`
	Stores         uint64 `json:"stores"`
	Branches       uint64 `json:"branches"`
	Kernel         uint64 `json:"kernel"`
	FPOps          uint64 `json:"fpops"`
	Mispredictable uint64 `json:"mispredictable"`

	// TraceDigest is set only when the state was exported from a
	// TraceReader: it pins which trace N indexes, so a resume can
	// reject a cursor from a different recording. Generator states
	// leave it empty.
	TraceDigest string `json:"trace_digest,omitempty"`
}

// ExportState captures the generator's mutable state.
func (g *Generator) ExportState() GeneratorState {
	st := GeneratorState{
		RNG:            g.rng.s,
		CurIndex:       -1,
		SlotIdx:        g.slotIdx,
		ItersLeft:      g.itersLeft,
		N:              g.n,
		NRegMod:        g.nRegMod,
		Ring:           append([]int16(nil), g.ring[:]...),
		ChaseUser:      append([]int16(nil), g.chaseUser...),
		ChaseKern:      append([]int16(nil), g.chaseKern...),
		LastLoadDst:    g.lastLoadDst,
		Loads:          g.loads,
		Stores:         g.stores,
		Branches:       g.branches,
		Kernel:         g.kernel,
		FPOps:          g.fpops,
		Mispredictable: g.mispredictable,
	}
	if g.cur != nil {
		for i := range g.userT {
			if g.cur == &g.userT[i] {
				st.CurIndex, st.CurKernel = i, false
			}
		}
		for i := range g.kernT {
			if g.cur == &g.kernT[i] {
				st.CurIndex, st.CurKernel = i, true
			}
		}
	}
	for _, r := range g.userRegions {
		st.UserCursors = append(st.UserCursors, r.cursor)
	}
	for _, r := range g.kernRegions {
		st.KernCursors = append(st.KernCursors, r.cursor)
	}
	return st
}

// ImportState restores state exported from a generator with the same
// (benchmark, seed). The receiver must be freshly built (or at least
// structurally identical): templates, regions, and thresholds are not
// serialized, so a geometry mismatch means the snapshot belongs to a
// different workload and is rejected.
func (g *Generator) ImportState(st GeneratorState) error {
	switch {
	case len(st.Ring) != regRingSize:
		return fmt.Errorf("workload: snapshot ring has %d slots, want %d", len(st.Ring), regRingSize)
	case len(st.ChaseUser) != len(g.chaseUser):
		return fmt.Errorf("workload: snapshot has %d user chase pointers, generator has %d", len(st.ChaseUser), len(g.chaseUser))
	case len(st.ChaseKern) != len(g.chaseKern):
		return fmt.Errorf("workload: snapshot has %d kernel chase pointers, generator has %d", len(st.ChaseKern), len(g.chaseKern))
	case len(st.UserCursors) != len(g.userRegions):
		return fmt.Errorf("workload: snapshot has %d user region cursors, generator has %d regions", len(st.UserCursors), len(g.userRegions))
	case len(st.KernCursors) != len(g.kernRegions):
		return fmt.Errorf("workload: snapshot has %d kernel region cursors, generator has %d regions", len(st.KernCursors), len(g.kernRegions))
	}
	switch {
	case st.CurIndex < -1,
		!st.CurKernel && st.CurIndex >= len(g.userT),
		st.CurKernel && st.CurIndex >= len(g.kernT):
		return fmt.Errorf("workload: snapshot template index %d (kernel=%v) out of range", st.CurIndex, st.CurKernel)
	}
	if st.RNG == 0 {
		// xorshift's zero fixed point can never legitimately occur.
		return fmt.Errorf("workload: snapshot rng state is zero")
	}
	g.rng.s = st.RNG
	switch {
	case st.CurIndex == -1:
		g.cur = nil
	case st.CurKernel:
		g.cur = &g.kernT[st.CurIndex]
	default:
		g.cur = &g.userT[st.CurIndex]
	}
	g.slotIdx = st.SlotIdx
	g.itersLeft = st.ItersLeft
	g.n = st.N
	g.nRegMod = st.NRegMod
	copy(g.ring[:], st.Ring)
	copy(g.chaseUser, st.ChaseUser)
	copy(g.chaseKern, st.ChaseKern)
	g.lastLoadDst = st.LastLoadDst
	for i, r := range g.userRegions {
		r.cursor = st.UserCursors[i]
	}
	for i, r := range g.kernRegions {
		r.cursor = st.KernCursors[i]
	}
	g.loads = st.Loads
	g.stores = st.Stores
	g.branches = st.Branches
	g.kernel = st.Kernel
	g.fpops = st.FPOps
	g.mispredictable = st.Mispredictable
	return nil
}
