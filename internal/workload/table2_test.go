package workload

import (
	"fmt"
	"math"
	"testing"
)

// Table 2 of the paper, transcribed by hand. These rows deliberately
// repeat numbers that also live in model.go: TestTable2Fractions
// checks the generators against the Model structs, while this test
// pins both against the paper itself, so editing a constant in
// model.go cannot silently move the reference point along with it.
var paperTable2 = []struct {
	name               string
	loadPct, storePct  float64
	kernelPct, userPct float64 // shares of cycles; idle (pmake, database) omitted
}{
	{"gcc", 28.1, 12.2, 10.0, 90.0},
	{"li", 33.2, 13.0, 0.2, 99.8},
	{"compress", 34.5, 8.0, 8.4, 91.6},
	{"tomcatv", 26.9, 8.5, 0.4, 99.6},
	{"su2cor", 28.0, 6.3, 0.5, 99.5},
	{"apsi", 40.0, 11.7, 2.2, 97.8},
	{"pmake", 25.8, 11.9, 8.9, 86.0},
	{"vcs", 25.7, 15.1, 9.9, 90.1},
	{"database", 24.8, 13.6, 18.4, 17.0},
}

// TestTable2AgainstPaper regenerates every workload from several seeds
// and holds its measured instruction mix to the paper's Table 2:
// loads and stores within 3 points, and the kernel share of non-idle
// execution within 5 points. The generator does not model idle time,
// so the kernel reference is K/(K+U).
func TestTable2AgainstPaper(t *testing.T) {
	if len(paperTable2) != len(BenchmarkNames()) {
		t.Fatalf("table covers %d benchmarks, models define %d", len(paperTable2), len(BenchmarkNames()))
	}
	for _, row := range paperTable2 {
		for _, seed := range []uint64{1, 2, 7} {
			row, seed := row, seed
			t.Run(fmt.Sprintf("%s/seed%d", row.name, seed), func(t *testing.T) {
				t.Parallel()
				g := MustNew(row.name, seed)
				for i := 0; i < 200_000; i++ {
					g.Next()
				}
				if d := math.Abs(g.MeasuredLoadPct() - row.loadPct); d > 3.0 {
					t.Errorf("load%% = %.1f, paper says %.1f", g.MeasuredLoadPct(), row.loadPct)
				}
				if d := math.Abs(g.MeasuredStorePct() - row.storePct); d > 3.0 {
					t.Errorf("store%% = %.1f, paper says %.1f", g.MeasuredStorePct(), row.storePct)
				}
				wantKernel := 100 * row.kernelPct / (row.kernelPct + row.userPct)
				if d := math.Abs(g.MeasuredKernelPct() - wantKernel); d > 5.0 {
					t.Errorf("kernel%% = %.1f, paper's K/(K+U) = %.1f", g.MeasuredKernelPct(), wantKernel)
				}
			})
		}
	}
}
