package workload

import (
	"math"
	"testing"

	"hbcache/internal/isa"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
	if NewRand(0).Uint64() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(7)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
	var gsum float64
	for i := 0; i < 10000; i++ {
		g := r.Geometric(8)
		if g < 1 {
			t.Fatalf("Geometric < 1: %d", g)
		}
		gsum += float64(g)
	}
	if mean := gsum / 10000; math.Abs(mean-8) > 0.5 {
		t.Errorf("Geometric(8) mean = %v, want ~8", mean)
	}
	if r.Geometric(0.5) != 1 {
		t.Error("Geometric(<1) must return 1")
	}
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		counts[r.Intn(3)]++
	}
	for v := range counts {
		if v < 0 || v > 2 {
			t.Errorf("Intn(3) produced %d", v)
		}
	}
}

func TestBenchmarkRoster(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 9 {
		t.Fatalf("have %d benchmarks, want 9", len(names))
	}
	models := Models()
	groups := map[Group]int{}
	for _, n := range names {
		m, ok := models[n]
		if !ok {
			t.Fatalf("missing model %q", n)
		}
		groups[m.Group]++
		busy := m.Paper.KernelPct + m.Paper.UserPct + m.Paper.IdlePct
		if math.Abs(busy-100) > 0.2 {
			t.Errorf("%s: kernel+user+idle = %v, want 100", n, busy)
		}
		if len(m.Regions) == 0 {
			t.Errorf("%s: no regions", n)
		}
	}
	// Three benchmarks per group, per Table 1.
	if groups[SPECint] != 3 || groups[SPECfp] != 3 || groups[Multiprogramming] != 3 {
		t.Errorf("group sizes = %v, want 3/3/3", groups)
	}
	for _, n := range RepresentativeNames() {
		if _, ok := models[n]; !ok {
			t.Errorf("representative %q missing", n)
		}
	}
	if _, err := ModelFor("nonesuch"); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestTable2Fractions(t *testing.T) {
	// The generated stream must match the paper's load/store/kernel
	// percentages within a small tolerance.
	for _, name := range BenchmarkNames() {
		g := MustNew(name, 1)
		for i := 0; i < 200000; i++ {
			g.Next()
		}
		m := g.Model()
		if d := math.Abs(g.MeasuredLoadPct() - m.Paper.LoadPct); d > 3.0 {
			t.Errorf("%s: load%% = %.1f, paper %.1f (|d|=%.1f)", name, g.MeasuredLoadPct(), m.Paper.LoadPct, d)
		}
		if d := math.Abs(g.MeasuredStorePct() - m.Paper.StorePct); d > 3.0 {
			t.Errorf("%s: store%% = %.1f, paper %.1f", name, g.MeasuredStorePct(), m.Paper.StorePct)
		}
		wantKernel := 100 * m.Paper.KernelPct / (m.Paper.KernelPct + m.Paper.UserPct)
		if d := math.Abs(g.MeasuredKernelPct() - wantKernel); d > 5.0 {
			t.Errorf("%s: kernel%% = %.1f, want ~%.1f", name, g.MeasuredKernelPct(), wantKernel)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := MustNew("gcc", 5)
	b := MustNew("gcc", 5)
	for i := 0; i < 5000; i++ {
		ia, _ := a.Next()
		ib, _ := b.Next()
		if ia != ib {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, ia, ib)
		}
	}
	c := MustNew("gcc", 6)
	diverged := false
	a = MustNew("gcc", 5)
	for i := 0; i < 5000; i++ {
		ia, _ := a.Next()
		ic, _ := c.Next()
		if ia != ic {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds should produce different streams")
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	g := MustNew("tomcatv", 3)
	inRange := func(addr uint64, regions []*Region) bool {
		for _, rg := range regions {
			if addr >= rg.base && addr < rg.base+rg.Bytes {
				return true
			}
		}
		return false
	}
	for i := 0; i < 50000; i++ {
		inst, _ := g.Next()
		if !inst.Op.IsMem() {
			continue
		}
		regions := g.userRegions
		if inst.Kernel {
			regions = g.kernRegions
		}
		if !inRange(inst.Addr, regions) {
			t.Fatalf("address %#x outside its %v regions", inst.Addr, inst.Kernel)
		}
	}
}

func TestKernelUserAddressSpacesDisjoint(t *testing.T) {
	g := MustNew("database", 3)
	var kernelMin uint64 = math.MaxUint64
	var userMax uint64
	for i := 0; i < 100000; i++ {
		inst, _ := g.Next()
		if !inst.Op.IsMem() {
			continue
		}
		if inst.Kernel {
			if inst.Addr < kernelMin {
				kernelMin = inst.Addr
			}
		} else if inst.Addr > userMax {
			userMax = inst.Addr
		}
	}
	if kernelMin <= userMax {
		t.Errorf("kernel (min %#x) and user (max %#x) spaces overlap", kernelMin, userMax)
	}
}

func TestGroupILPCharacter(t *testing.T) {
	// Floating point codes must have longer dependence distances and
	// fewer branches than integer codes.
	measure := func(name string) (branchPct float64, fpPct float64) {
		g := MustNew(name, 9)
		for i := 0; i < 100000; i++ {
			g.Next()
		}
		return g.MeasuredBranchPct(), g.MeasuredFPPct()
	}
	gccBr, gccFP := measure("gcc")
	tomBr, tomFP := measure("tomcatv")
	if tomBr >= gccBr {
		t.Errorf("tomcatv branch%% (%.1f) must be below gcc (%.1f)", tomBr, gccBr)
	}
	if tomFP <= gccFP {
		t.Errorf("tomcatv FP%% (%.1f) must exceed gcc (%.1f)", tomFP, gccFP)
	}
	mg, _ := ModelFor("gcc")
	mt, _ := ModelFor("tomcatv")
	if mt.DepMean <= mg.DepMean {
		t.Error("FP dependence distance must exceed integer")
	}
}

func TestChaseLoadsAreSerialized(t *testing.T) {
	g := MustNew("li", 11)
	// li is chase heavy: within a window we must find loads whose
	// source register is the destination of an earlier load.
	lastDst := map[int16]bool{}
	serialized := 0
	loads := 0
	for i := 0; i < 50000; i++ {
		inst, _ := g.Next()
		if inst.Op != isa.Load {
			continue
		}
		loads++
		if inst.Src1 != isa.NoReg && lastDst[inst.Src1] {
			serialized++
		}
		if inst.Dst != isa.NoReg {
			lastDst[inst.Dst] = true
		}
	}
	if loads == 0 || float64(serialized)/float64(loads) < 0.10 {
		t.Errorf("li: %d/%d loads load-dependent, want >= 10%%", serialized, loads)
	}
}

func TestBranchOutcomesLearnable(t *testing.T) {
	// Loop-back branches at a given PC must be mostly taken (loops run
	// many iterations and mispredict only on exit).
	g := MustNew("tomcatv", 13)
	taken, total := 0, 0
	for i := 0; i < 100000; i++ {
		inst, _ := g.Next()
		if inst.Op == isa.Branch {
			total++
			if inst.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches generated")
	}
	if ratio := float64(taken) / float64(total); ratio < 0.6 {
		t.Errorf("taken ratio = %.2f, want >= 0.6 for loopy FP code", ratio)
	}
}

func TestStreamPatternSequential(t *testing.T) {
	rg := &Region{Bytes: 1024, Pattern: Stream, Stride: 8, base: 0x1000}
	r := NewRand(1)
	prev := rg.next(r)
	for i := 1; i < 200; i++ {
		cur := rg.next(r)
		if cur != prev+8 && cur != rg.base { // wraps at region end
			t.Fatalf("stream not sequential: %#x after %#x", cur, prev)
		}
		prev = cur
	}
}

func TestHotPatternSkewed(t *testing.T) {
	rg := &Region{Bytes: 64 << 10, Pattern: Hot, base: 0}
	r := NewRand(2)
	inFront := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if rg.next(r) < rg.Bytes/8 {
			inFront++
		}
	}
	// The hottest eighth must draw far more than its uniform share.
	if frac := float64(inFront) / n; frac < 0.3 {
		t.Errorf("hot pattern front-eighth share = %.2f, want >= 0.3", frac)
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{Stream: "stream", Hot: "hot", Uniform: "uniform", Chase: "chase"} {
		if p.String() != want {
			t.Errorf("%d -> %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestGroupString(t *testing.T) {
	if SPECint.String() != "SPECint" || SPECfp.String() != "SPECfp" || Multiprogramming.String() != "multiprogramming" {
		t.Error("group names wrong")
	}
}

func TestWorkingSetSizesMatchGroups(t *testing.T) {
	// The paper: integer benchmarks have the smallest working sets,
	// multiprogramming the largest of the integer-style codes. Compare
	// total region bytes.
	total := func(name string) uint64 {
		m, _ := ModelFor(name)
		var t uint64
		for _, r := range m.Regions {
			t += r.Bytes
		}
		return t
	}
	if total("gcc") >= total("database") {
		t.Error("gcc working set must be smaller than database")
	}
	if total("li") >= total("vcs") {
		t.Error("li working set must be smaller than vcs")
	}
}
