package workload

import (
	"testing"

	"hbcache/internal/isa"
)

// drainNext pulls n instructions via Next, collecting memory addresses
// and packed branch outcomes the way Warm reports them.
func drainNext(g *Generator, n int) (addrs, branches []uint64) {
	for i := 0; i < n; i++ {
		inst, _ := g.Next()
		switch inst.Op {
		case isa.Load, isa.Store:
			addrs = append(addrs, inst.Addr)
		case isa.Branch:
			t := uint64(0)
			if inst.Taken {
				t = 1
			}
			branches = append(branches, inst.PC<<1|t)
		}
	}
	return addrs, branches
}

// TestWarmMatchesNext pins the contract Warm's doc comment states: a
// Warm(n) call observes exactly the memory addresses and branch
// outcomes that n Next calls would produce, and leaves the generator in
// exactly the state those n Next calls would — so the subsequent stream
// is identical instruction for instruction.
func TestWarmMatchesNext(t *testing.T) {
	const warmN = 20000
	const tailN = 2000
	for _, name := range BenchmarkNames() {
		t.Run(name, func(t *testing.T) {
			ref := MustNew(name, 7)
			got := MustNew(name, 7)

			wantAddrs, wantBranches := drainNext(ref, warmN)

			addrs := make([]uint64, warmN)
			branches := make([]uint64, warmN)
			na, nb := got.Warm(warmN, addrs, branches)

			if na != len(wantAddrs) || nb != len(wantBranches) {
				t.Fatalf("Warm reported %d addrs, %d branches; Next produced %d, %d",
					na, nb, len(wantAddrs), len(wantBranches))
			}
			for i := range wantAddrs {
				if addrs[i] != wantAddrs[i] {
					t.Fatalf("addr %d: Warm %#x, Next %#x", i, addrs[i], wantAddrs[i])
				}
			}
			for i := range wantBranches {
				if branches[i] != wantBranches[i] {
					t.Fatalf("branch %d: Warm %#x, Next %#x", i, branches[i], wantBranches[i])
				}
			}
			if ref.Emitted() != got.Emitted() {
				t.Fatalf("emitted counts diverge: %d vs %d", got.Emitted(), ref.Emitted())
			}

			// The tail stream must be bit-identical: Warm left every rng
			// draw, ring slot, chase pointer and counter where Next would.
			for i := 0; i < tailN; i++ {
				want, _ := ref.Next()
				have, _ := got.Next()
				if have != want {
					t.Fatalf("post-warm inst %d diverges:\nwarm path: %+v\nnext path: %+v", i, have, want)
				}
			}
		})
	}
}

// TestWarmInterleavesWithNext checks Warm in chunks, mixed with Next
// calls, as sim.Run's chunked prewarm drain does.
func TestWarmInterleavesWithNext(t *testing.T) {
	ref := MustNew("gcc", 3)
	got := MustNew("gcc", 3)

	addrs := make([]uint64, 4096)
	branches := make([]uint64, 4096)
	for _, chunk := range []int{1, 63, 4096, 500, 2} {
		drainNext(ref, chunk)
		got.Warm(chunk, addrs, branches)
		for i := 0; i < 100; i++ {
			want, _ := ref.Next()
			have, _ := got.Next()
			if have != want {
				t.Fatalf("after chunk %d, inst %d diverges: %+v vs %+v", chunk, i, have, want)
			}
		}
	}
}
