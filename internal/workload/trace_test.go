package workload

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hbcache/internal/isa"
)

// recordN encodes the first n instructions of a fresh generator stream.
func recordN(t *testing.T, bench string, seed, n uint64) *Trace {
	t.Helper()
	data, err := RecordTrace(bench, seed, n)
	if err != nil {
		t.Fatalf("RecordTrace(%s): %v", bench, err)
	}
	tr, err := OpenTrace(data)
	if err != nil {
		t.Fatalf("OpenTrace(%s): %v", bench, err)
	}
	return tr
}

func TestTraceReplayMatchesLiveGenerator(t *testing.T) {
	const n = 5000
	for _, bench := range BenchmarkNames() {
		tr := recordN(t, bench, 42, n)
		if tr.Count() != n {
			t.Fatalf("%s: recorded %d records, want %d", bench, tr.Count(), n)
		}
		hdr := tr.Header()
		if hdr.Benchmark != bench || hdr.Seed != 42 || hdr.Kind != TraceKind {
			t.Fatalf("%s: header %+v", bench, hdr)
		}
		gen := MustNew(bench, 42)
		if !reflect.DeepEqual(hdr.Regions, gen.Regions()) {
			t.Fatalf("%s: recorded regions differ from generator regions", bench)
		}
		r := tr.NewReader()
		if !reflect.DeepEqual(r.Regions(), gen.Regions()) {
			t.Fatalf("%s: reader regions differ from generator regions", bench)
		}
		for i := 0; i < n; i++ {
			want, _ := gen.Next()
			got, ok := r.Next()
			if !ok {
				t.Fatalf("%s: trace ended at %d, want %d records", bench, i, n)
			}
			if got != want {
				t.Fatalf("%s: inst %d replayed %+v, live %+v", bench, i, got, want)
			}
		}
		if got := r.Emitted(); got != n {
			t.Fatalf("%s: Emitted=%d after draining %d", bench, got, n)
		}
		// Past the end: (zero, false) forever, like an exhausted
		// isa.Reader.
		for i := 0; i < 3; i++ {
			if inst, ok := r.Next(); ok || inst != (isa.Inst{}) {
				t.Fatalf("%s: Next past end returned (%+v, %v)", bench, inst, ok)
			}
		}
	}
}

func TestTraceWarmMatchesGeneratorWarm(t *testing.T) {
	const n = 4000
	for _, bench := range BenchmarkNames() {
		// One record of slack so the post-Warm probe still has a live
		// instruction to compare.
		tr := recordN(t, bench, 7, n+1)
		r := tr.NewReader()
		gen := MustNew(bench, 7)
		ga := make([]uint64, n)
		gb := make([]uint64, n)
		ta := make([]uint64, n)
		tb := make([]uint64, n)
		gna, gnb := gen.Warm(n, ga, gb)
		tna, tnb := r.Warm(n, ta, tb)
		if gna != tna || gnb != tnb {
			t.Fatalf("%s: trace Warm reported (%d,%d), generator (%d,%d)", bench, tna, tnb, gna, gnb)
		}
		if !reflect.DeepEqual(ta[:tna], ga[:gna]) {
			t.Fatalf("%s: warm addresses diverge", bench)
		}
		if !reflect.DeepEqual(tb[:tnb], gb[:gnb]) {
			t.Fatalf("%s: warm branch outcomes diverge", bench)
		}
		// Warm advanced both streams identically: the next instruction
		// must still match.
		want, _ := gen.Next()
		got, ok := r.Next()
		if !ok || got != want {
			t.Fatalf("%s: post-Warm inst diverges: trace (%+v,%v), live %+v", bench, got, ok, want)
		}
	}
}

func TestTraceFillMatchesGeneratorFill(t *testing.T) {
	const n = 3000
	tr := recordN(t, "tomcatv", 9, n)
	r := tr.NewReader()
	gen := MustNew("tomcatv", 9)
	got := make([]isa.Inst, 1024)
	want := make([]isa.Inst, 1024)
	r.Fill(got)
	gen.Fill(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Fill diverges from generator Fill")
	}
	// A Fill crossing the end of the trace pads with zero Insts.
	tail := make([]isa.Inst, n)
	r.Fill(tail)
	live := n - 1024
	for i := 0; i < live; i++ {
		w, _ := gen.Next()
		if tail[i] != w {
			t.Fatalf("inst %d of tail diverges", 1024+i)
		}
	}
	for i := live; i < n; i++ {
		if tail[i] != (isa.Inst{}) {
			t.Fatalf("slot %d past end of trace not zero: %+v", i, tail[i])
		}
	}
	if r.Emitted() != n {
		t.Fatalf("Emitted=%d after exhausting %d-record trace", r.Emitted(), n)
	}
}

func TestTraceWarmStopsAtEnd(t *testing.T) {
	const n = 500
	tr := recordN(t, "su2cor", 3, n)
	r := tr.NewReader()
	addrs := make([]uint64, 2*n)
	branches := make([]uint64, 2*n)
	na, nb := r.Warm(2*n, addrs, branches)
	if r.Emitted() != n {
		t.Fatalf("Warm past end consumed %d, trace has %d", r.Emitted(), n)
	}
	gen := MustNew("su2cor", 3)
	wa := make([]uint64, n)
	wb := make([]uint64, n)
	wna, wnb := gen.Warm(n, wa, wb)
	if na != wna || nb != wnb {
		t.Fatalf("partial Warm reported (%d,%d), want (%d,%d)", na, nb, wna, wnb)
	}
}

func TestTraceStateRoundTrip(t *testing.T) {
	const n, skip = 2000, 731
	tr := recordN(t, "compress", 5, n)
	r := tr.NewReader()
	for i := 0; i < skip; i++ {
		r.Next()
	}
	st := r.ExportState()
	if st.N != skip || st.TraceDigest != tr.Digest() {
		t.Fatalf("exported state %+v", st)
	}
	fresh := tr.NewReader()
	if err := fresh.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	for i := 0; i < 100; i++ {
		want, wok := r.Next()
		got, gok := fresh.Next()
		if wok != gok || got != want {
			t.Fatalf("inst %d after restore diverges", skip+i)
		}
	}
}

func TestTraceImportStateRejectsMismatch(t *testing.T) {
	tr := recordN(t, "compress", 5, 100)
	other := recordN(t, "compress", 6, 100)
	r := tr.NewReader()
	if err := r.ImportState(other.NewReader().ExportState()); err == nil {
		t.Fatal("ImportState accepted a state from a different trace")
	}
	if err := r.ImportState(MustNew("compress", 5).ExportState()); err == nil {
		t.Fatal("ImportState accepted a generator state with no trace digest")
	}
	if err := r.ImportState(GeneratorState{TraceDigest: tr.Digest(), N: 101}); err == nil {
		t.Fatal("ImportState accepted a position beyond the trace")
	}
}

func TestTraceDigestIsContentAddress(t *testing.T) {
	a1, err := RecordTrace("li", 11, 300)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RecordTrace("li", 11, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecordTrace("li", 12, 300)
	if err != nil {
		t.Fatal(err)
	}
	ta1, _ := OpenTrace(a1)
	ta2, _ := OpenTrace(a2)
	tb, _ := OpenTrace(b)
	if ta1.Digest() != ta2.Digest() {
		t.Fatal("identical recordings produced different digests")
	}
	if ta1.Digest() == tb.Digest() {
		t.Fatal("different recordings share a digest")
	}
	if len(ta1.Digest()) != 64 || strings.ToLower(ta1.Digest()) != ta1.Digest() {
		t.Fatalf("digest %q is not lowercase hex sha-256", ta1.Digest())
	}
}

func TestTraceCorruptionClassified(t *testing.T) {
	data, err := RecordTrace("apsi", 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), data...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTraceCorrupt},
		{"short", data[:4], ErrTraceCorrupt},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b }), ErrTraceCorrupt},
		{"future version", mutate(func(b []byte) []byte { b[8] = 99; return b }), ErrTraceVersion},
		{"flipped payload byte", mutate(func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }), ErrTraceCorrupt},
		{"flipped checksum", mutate(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }), ErrTraceCorrupt},
		{"truncated", data[:len(data)-40], ErrTraceCorrupt},
		{"trailing garbage", append(append([]byte(nil), data...), 0xAB), ErrTraceCorrupt},
	}
	for _, tc := range cases {
		if _, err := OpenTrace(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestTraceKindMismatch(t *testing.T) {
	w := NewTraceWriter("apsi", 1, nil)
	w.header.Kind = "hbcache-trace-v0"
	data, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTrace(data); !errors.Is(err, ErrTraceKind) {
		t.Fatalf("got %v, want ErrTraceKind", err)
	}
}

func TestTraceFileRoundTripAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ear.trace")
	data, err := RecordTrace("apsi", 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceFile(path, data); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := TraceFileDigest(path)
	if err != nil {
		t.Fatal(err)
	}
	if digest != tr.Digest() {
		t.Fatalf("TraceFileDigest %q != Digest %q", digest, tr.Digest())
	}

	// Corrupt the file in place: opening must classify, quarantine to
	// *.corrupt, and bump the process-wide counter.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	before := TracesQuarantined()
	if _, err := OpenTraceFile(path); !errors.Is(err, ErrTraceCorrupt) {
		t.Fatalf("corrupt file: got %v, want ErrTraceCorrupt", err)
	}
	if got := TracesQuarantined(); got != before+1 {
		t.Fatalf("TracesQuarantined=%d, want %d", got, before+1)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt original still present: %v", err)
	}

	if _, err := OpenTraceFile(filepath.Join(dir, "missing.trace")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want os.ErrNotExist", err)
	}
}

func TestTraceWriterRejectsUnencodable(t *testing.T) {
	w := NewTraceWriter("x", 0, nil)
	if err := w.Add(isa.Inst{Op: isa.Op(isa.NumOps)}); err == nil {
		t.Fatal("accepted out-of-range op")
	}
	if err := w.Add(isa.Inst{Dst: isa.NumLogicalRegs}); err == nil {
		t.Fatal("accepted out-of-range register")
	}
	if err := w.Add(isa.Inst{Src1: -2}); err == nil {
		t.Fatal("accepted register below NoReg")
	}
}

func TestTraceCompactEncoding(t *testing.T) {
	const n = 10000
	data, err := RecordTrace("pmake", 2, n)
	if err != nil {
		t.Fatal(err)
	}
	// The format's reason to exist: far denser than in-memory Insts
	// (40 bytes each). Typical records land around 6-9 bytes.
	if perInst := float64(len(data)) / n; perInst > 12 {
		t.Fatalf("encoding averages %.1f bytes/inst, want ≤ 12", perInst)
	}
}
