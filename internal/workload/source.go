package workload

import "hbcache/internal/isa"

// Source is the instruction-stream seam the simulator runs on: the
// synthetic Generator and the recorded-trace TraceReader both implement
// it, so every consumer — the timing machine, the batch kernel's shared
// stream ring, functional prewarm, interval sampling, and snapshots —
// works identically whether the stream is synthesized live or replayed
// from a file.
//
// The contract mirrors the Generator's long-standing behavior:
//
//   - Next implements isa.Reader. A Generator's stream never ends; a
//     TraceReader's ends when the recording does, after which Next
//     returns (zero, false) forever and the core winds down cleanly.
//   - Warm advances the stream exactly as n calls of Next would, but
//     reports only what a functional prewarm consumes: every memory
//     reference address in addrs[:na] and every conditional-branch
//     outcome in branches[:nb], packed pc<<1|taken.
//   - Fill assembles len(dst) instructions, advancing the stream
//     exactly as len(dst) calls of Next would (the batch kernel's bulk
//     path). A Source that ends mid-Fill pads with zero Insts; callers
//     that care bound their reads with Len-style knowledge (see
//     TraceReader.Len).
//   - Emitted is the stream position: instructions produced so far.
//   - Regions describes the laid-out address space for the pre-run
//     region sweep and miss attribution.
//   - ExportState/ImportState round-trip the stream cursor through a
//     GeneratorState for checkpoints; restoring onto a freshly built
//     Source for the same underlying stream makes the next instruction
//     bit-identical to what the exporter would have produced.
type Source interface {
	isa.Reader
	Warm(n int, addrs, branches []uint64) (na, nb int)
	Fill(dst []isa.Inst)
	Emitted() uint64
	Regions() []RegionInfo
	ExportState() GeneratorState
	ImportState(GeneratorState) error
}

var (
	_ Source = (*Generator)(nil)
	_ Source = (*TraceReader)(nil)
)
