package workload

import (
	"testing"

	"hbcache/internal/isa"
)

// TestFillMatchesNext pins Fill's contract: filling a span advances
// the generator exactly as the same number of Next calls, producing
// the identical records — the property the batch kernel's shared
// stream ring depends on.
func TestFillMatchesNext(t *testing.T) {
	for _, bench := range BenchmarkNames() {
		a := MustNew(bench, 3)
		b := MustNew(bench, 3)
		buf := make([]isa.Inst, 777)
		for round := 0; round < 4; round++ {
			a.Fill(buf)
			for i, got := range buf {
				want, _ := b.Next()
				if got != want {
					t.Fatalf("%s round %d inst %d: Fill %+v != Next %+v", bench, round, i, got, want)
				}
			}
		}
		if a.Emitted() != b.Emitted() {
			t.Fatalf("%s: Emitted diverged: %d vs %d", bench, a.Emitted(), b.Emitted())
		}
	}
}
