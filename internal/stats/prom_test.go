package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLatencyHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if got := h.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if got := h.Sum(); got != 0 {
		t.Errorf("Sum() = %g, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("Mean() = %g, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestLatencyHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram(1, 2, 4, 8)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 5, 7, 20, 20} {
		h.Observe(v)
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("Count() = %d, want 10", got)
	}
	if got, want := h.Sum(), 64.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
	// The median rank (5 of 10) lands in the (2,4] bucket.
	if q := h.Quantile(0.5); q <= 2 || q > 4 {
		t.Errorf("Quantile(0.5) = %g, want in (2,4]", q)
	}
	// Out-of-range q clamps instead of panicking.
	if q := h.Quantile(-1); q < 0.5 || q > 1 {
		t.Errorf("Quantile(-1) = %g, want clamped near min", q)
	}
	// The top quantile lives in the overflow bucket, bounded by the
	// observed maximum rather than +Inf.
	if q := h.Quantile(1); q > h.Max() || q <= 8 {
		t.Errorf("Quantile(1) = %g, want in (8, %g]", q, h.Max())
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%g) = %g < previous %g; quantiles must be monotone", q, v, prev)
		}
		prev = v
	}
}

func TestLatencyHistogramSingleSample(t *testing.T) {
	h := NewLatencyHistogram(1, 10)
	h.Observe(3)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got < 1 || got > 10 {
			t.Errorf("Quantile(%g) = %g, want within the sample's bucket (1,10]", q, got)
		}
	}
}

func TestRatioZeroDenominator(t *testing.T) {
	if got := Ratio(5, 0); got != 0 {
		t.Errorf("Ratio(5, 0) = %g, want 0", got)
	}
	if got := Ratio(0, 0); got != 0 {
		t.Errorf("Ratio(0, 0) = %g, want 0", got)
	}
	if got := Ratio(1, 2); got != 0.5 {
		t.Errorf("Ratio(1, 2) = %g, want 0.5", got)
	}
}

// TestPromGolden pins the exact exposition-format output: a scrape
// parser is strict about this text, so rendering changes must be
// deliberate.
func TestPromGolden(t *testing.T) {
	h := NewLatencyHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(3)

	var p Prom
	p.Gauge("hb_queue_depth", "Jobs waiting to run.", 4)
	p.Counter("hb_jobs_total", "Jobs accepted.", 17)
	p.Histogram("hb_job_latency_seconds", "Job wall time.", h)

	want := strings.Join([]string{
		"# HELP hb_queue_depth Jobs waiting to run.",
		"# TYPE hb_queue_depth gauge",
		"hb_queue_depth 4",
		"# HELP hb_jobs_total Jobs accepted.",
		"# TYPE hb_jobs_total counter",
		"hb_jobs_total 17",
		"# HELP hb_job_latency_seconds Job wall time.",
		"# TYPE hb_job_latency_seconds histogram",
		`hb_job_latency_seconds_bucket{le="0.1"} 1`,
		`hb_job_latency_seconds_bucket{le="1"} 3`,
		`hb_job_latency_seconds_bucket{le="+Inf"} 4`,
		"hb_job_latency_seconds_sum 4.05",
		"hb_job_latency_seconds_count 4",
		"",
	}, "\n")
	if got := p.String(); got != want {
		t.Errorf("Prom rendering mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromVecGolden pins the labeled-family rendering: one header per
// family, one sample per label set, labels sorted by key.
func TestPromVecGolden(t *testing.T) {
	var p Prom
	p.GaugeVec("hb_worker_up", "Worker dispatchability.", []Sample{
		{Labels: map[string]string{"worker": "http://w1"}, Value: 1},
		{Labels: map[string]string{"worker": "http://w2"}, Value: 0},
	})
	p.CounterVec("hb_worker_done_total", "Points completed.", []Sample{
		{Labels: map[string]string{"worker": "http://w1", "role": "fleet"}, Value: 12},
	})

	want := strings.Join([]string{
		"# HELP hb_worker_up Worker dispatchability.",
		"# TYPE hb_worker_up gauge",
		`hb_worker_up{worker="http://w1"} 1`,
		`hb_worker_up{worker="http://w2"} 0`,
		"# HELP hb_worker_done_total Points completed.",
		"# TYPE hb_worker_done_total counter",
		`hb_worker_done_total{role="fleet",worker="http://w1"} 12`,
		"",
	}, "\n")
	if got := p.String(); got != want {
		t.Errorf("Vec rendering mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHistogramEmptyBuckets(t *testing.T) {
	// The integer Histogram used by the simulator: empty and
	// out-of-range behavior.
	h := NewHistogram(4)
	if got := h.Total(); got != 0 {
		t.Errorf("empty Total() = %d, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean() = %g, want 0", got)
	}
	if got := h.Bucket(-1); got != 0 {
		t.Errorf("Bucket(-1) = %d, want 0", got)
	}
	if got := h.Bucket(99); got != 0 {
		t.Errorf("Bucket(99) = %d, want 0", got)
	}
	h.Add(-5) // clamps to bucket 0
	h.Add(99) // saturates into the top bucket
	if got := h.Bucket(0); got != 1 {
		t.Errorf("Bucket(0) = %d, want 1 after negative clamp", got)
	}
	if got := h.Bucket(4); got != 1 {
		t.Errorf("Bucket(4) = %d, want 1 after saturation", got)
	}
}
