package stats

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LatencyHistogram accumulates float64 samples (typically seconds) into
// fixed buckets chosen at construction, Prometheus-style: bucket i
// counts samples ≤ bounds[i], plus one overflow bucket above the last
// bound. It keeps exact count, sum, and extrema, so mean is exact and
// quantiles are bucket-interpolated estimates.
//
// Like the rest of this package it is not synchronized; callers that
// observe from multiple goroutines hold their own lock.
type LatencyHistogram struct {
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// DefaultLatencyBuckets spans sub-millisecond cache hits to multi-second
// full simulations.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewLatencyHistogram builds a histogram over the given ascending bucket
// upper bounds; with no bounds it uses DefaultLatencyBuckets.
func NewLatencyHistogram(bounds ...float64) *LatencyHistogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &LatencyHistogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *LatencyHistogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
}

// Count returns the number of samples observed.
func (h *LatencyHistogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *LatencyHistogram) Sum() float64 { return h.sum }

// Mean returns the exact sample mean, or 0 with no samples.
func (h *LatencyHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observed sample, or 0 with no samples.
func (h *LatencyHistogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the bucket holding the target rank, clamped to
// the observed extrema. With no samples it returns 0.
func (h *LatencyHistogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo < h.min {
			lo = h.min
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.max
}

// Prom accumulates metrics in the Prometheus text exposition format
// (version 0.0.4), the format scraped from a /metrics endpoint. Label
// maps render sorted by key so output is deterministic and testable
// against goldens.
type Prom struct {
	b strings.Builder
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (p *Prom) header(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *Prom) sample(name string, labels map[string]string, v float64) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		p.b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, "%s=%q", k, labels[k])
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(promFloat(v))
	p.b.WriteByte('\n')
}

// Gauge emits a gauge metric.
func (p *Prom) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.sample(name, nil, v)
}

// Counter emits a counter metric.
func (p *Prom) Counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.sample(name, nil, v)
}

// Sample is one labeled point of a metric family, for the Vec
// emitters below.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// GaugeVec emits one gauge family with a sample per label set (for
// example one hbserved_worker_up point per cluster worker). The header
// is written once; samples render in the order given, each with its
// labels sorted.
func (p *Prom) GaugeVec(name, help string, samples []Sample) {
	p.header(name, help, "gauge")
	for _, s := range samples {
		p.sample(name, s.Labels, s.Value)
	}
}

// CounterVec emits one counter family with a sample per label set.
func (p *Prom) CounterVec(name, help string, samples []Sample) {
	p.header(name, help, "counter")
	for _, s := range samples {
		p.sample(name, s.Labels, s.Value)
	}
}

// Histogram emits h as a Prometheus histogram: cumulative _bucket
// series with "le" labels (ending in +Inf), then _sum and _count.
func (p *Prom) Histogram(name, help string, h *LatencyHistogram) {
	p.header(name, help, "histogram")
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		p.sample(name+"_bucket", map[string]string{"le": promFloat(bound)}, float64(cum))
	}
	cum += h.counts[len(h.bounds)]
	p.sample(name+"_bucket", map[string]string{"le": "+Inf"}, float64(cum))
	p.sample(name+"_sum", nil, h.sum)
	p.sample(name+"_count", nil, float64(h.count))
}

// String returns everything emitted so far.
func (p *Prom) String() string { return p.b.String() }
