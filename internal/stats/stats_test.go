package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value counter must read 0")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("reset counter must read 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("division by zero must return 0")
	}
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio(3,4) = %v, want 0.75", got)
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.StdDev() != 0 {
		t.Error("empty distribution must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Add(x)
	}
	if d.N() != 8 {
		t.Errorf("N = %d, want 8", d.N())
	}
	if d.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", d.Mean())
	}
	if math.Abs(d.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", d.StdDev())
	}
	if d.Min() != 2 || d.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", d.Min(), d.Max())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 4, 9, -3} {
		h.Add(v)
	}
	if h.Bucket(0) != 2 { // 0 and -3 both land in bucket 0
		t.Errorf("bucket 0 = %d, want 2", h.Bucket(0))
	}
	if h.Bucket(1) != 2 {
		t.Errorf("bucket 1 = %d, want 2", h.Bucket(1))
	}
	if h.Bucket(4) != 2 { // 4 and the saturated 9
		t.Errorf("bucket 4 = %d, want 2", h.Bucket(4))
	}
	if h.Bucket(7) != 0 || h.Bucket(-1) != 0 {
		t.Error("out-of-range buckets must read 0")
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
	want := float64(0*2+1*2+4*2) / 6
	if math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", h.Mean(), want)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean must be 0")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	// Non-positive values are ignored rather than poisoning the result.
	if got := GeoMean([]float64{0, 4}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(0,4) = %v, want 4", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty Mean must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestTableString(t *testing.T) {
	tb := NewTable("bench", "ipc")
	tb.AddRowf("gcc", 1.234567)
	tb.AddRow("tomcatv") // short row pads
	out := tb.String()
	if !strings.Contains(out, "bench") || !strings.Contains(out, "1.235") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(`x,"y`, "z")
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,""y"`) {
		t.Errorf("CSV escaping broken: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header broken: %q", csv)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

// Property: distribution mean always lies within [min, max].
func TestDistributionMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var d Distribution
		any := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound the magnitude so sumSq cannot overflow; simulator
			// statistics are cycle counts and rates, far below this.
			x = math.Mod(x, 1e9)
			d.Add(x)
			any = true
		}
		if !any {
			return true
		}
		m := d.Mean()
		return m >= d.Min()-1e-6 && m <= d.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram total equals the number of Add calls.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(vs []int8) bool {
		h := NewHistogram(10)
		for _, v := range vs {
			h.Add(int(v))
		}
		return h.Total() == uint64(len(vs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
