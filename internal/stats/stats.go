// Package stats provides the light-weight counters, distributions, and
// table formatting shared by the simulator and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns c / d as a float, or 0 when d is zero.
func Ratio(c, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(c) / float64(d)
}

// Distribution accumulates samples and reports summary statistics. It
// stores only moments and extrema, so it is O(1) per sample.
type Distribution struct {
	n          uint64
	sum, sumSq float64
	min, max   float64
}

// Add records one sample.
func (d *Distribution) Add(x float64) {
	if d.n == 0 || x < d.min {
		d.min = x
	}
	if d.n == 0 || x > d.max {
		d.max = x
	}
	d.n++
	d.sum += x
	d.sumSq += x * x
}

// N returns the sample count.
func (d *Distribution) N() uint64 { return d.n }

// Mean returns the sample mean, or 0 with no samples.
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest sample, or 0 with no samples.
func (d *Distribution) Max() float64 { return d.max }

// StdDev returns the population standard deviation, or 0 with fewer than
// two samples.
func (d *Distribution) StdDev() float64 {
	if d.n < 2 {
		return 0
	}
	m := d.Mean()
	v := d.sumSq/float64(d.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Histogram counts samples in integer buckets (e.g. instructions retired
// per cycle, MSHR occupancy). Values beyond the top bucket saturate into
// it.
type Histogram struct {
	buckets []uint64
}

// NewHistogram returns a histogram with buckets for values 0..max.
func NewHistogram(max int) *Histogram {
	return &Histogram{buckets: make([]uint64, max+1)}
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
}

// Bucket returns the count of samples with value v.
func (h *Histogram) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, b := range h.buckets {
		t += b
	}
	return t
}

// Mean returns the weighted mean bucket value.
func (h *Histogram) Mean() float64 {
	var t, s uint64
	for v, b := range h.buckets {
		t += b
		s += uint64(v) * b
	}
	if t == 0 {
		return 0
	}
	return float64(s) / float64(t)
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
// The paper reports "the average of the nine benchmarks"; for normalized
// performance numbers the geometric mean is the conventional choice.
func GeoMean(xs []float64) float64 {
	var s float64
	var n int
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table formats aligned text tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, one format per cell value.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case uint64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns the keys of m in sorted order; handy for
// deterministic report output.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
