module hbcache

go 1.22
