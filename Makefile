GO ?= go

.PHONY: build bin test race vet fmt verify bench serve

build:
	$(GO) build ./...

# Install all command binaries into ./bin.
bin:
	$(GO) build -o bin/ ./cmd/...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# The runner, simulator, HTTP service, and server binary are the
# concurrency-sensitive packages; run them under the race detector in
# addition to the plain suite.
race:
	$(GO) test -race ./internal/runner ./internal/sim ./internal/service ./cmd/hbserved

# Run the simulation service locally with sensible dev defaults.
serve:
	$(GO) run ./cmd/hbserved -addr :8080 -cache-dir $${HBCACHE_DIR:-$$HOME/.cache/hbcache}

verify: build vet fmt race test
	@echo "verify: OK"

bench:
	$(GO) test -bench=. -benchmem
