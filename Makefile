GO ?= go

.PHONY: build bin test race vet fmt verify bench serve chaos cover fuzz cluster sample trace

build:
	$(GO) build ./...

# Install all command binaries into ./bin.
bin:
	$(GO) build -o bin/ ./cmd/...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# -shuffle=on randomizes test and subtest execution order each run,
# keeping the suite honest about hidden inter-test state.
test:
	$(GO) test -shuffle=on ./...

# The runner, simulator, HTTP service, and server binary are the
# concurrency-sensitive packages; run them under the race detector in
# addition to the plain suite. The explicit -timeout covers the sim
# package, whose full suite under the race detector outgrew go test's
# default 10 minutes on small (1-2 core) machines.
race:
	$(GO) test -race -timeout 30m ./internal/fault ./internal/runner ./internal/sim ./internal/service ./internal/cluster ./cmd/hbserved

# Fault-injection suite under the race detector: every fault kind fired
# into the runner, service, and cluster fabric (journal write/read
# corruption, dropped heartbeats), asserting bounded recovery (workers
# freed, breaker cycles, partial results well-formed, caches and journal
# lines quarantined). -count=1 defeats the test cache so the chaos runs
# are always live.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|CrashSafety' ./internal/runner ./internal/service ./internal/cluster

# Distributed-sweep smoke test: builds the server binary, spawns real
# coordinator and worker processes, and drives every crash drill —
# byte-identical sweeps with cluster-wide exactly-once, a worker
# SIGKILLed mid-sweep, the coordinator SIGKILLed mid-sweep and restarted
# against the same -journal-dir/-cache-dir (same sweep ID completes,
# zero re-simulations, corrupt journal lines quarantined), and a
# late-joining worker registering into a workerless coordinator then
# draining out on SIGTERM. -count=1 keeps the processes honest.
cluster:
	$(GO) test -count=1 -v -run 'TestClusterE2E' ./cmd/hbserved

# Sampled-vs-full validation across all nine workload models: the
# interval sampler must cut timed measure-phase cycles at least 10x
# while keeping IPC within 2% of exhaustive simulation. (CI runs the
# -short subset — best- and worst-error models — on every push; this
# full sweep is the release gate.)
sample:
	$(GO) test -count=1 -v -run TestSampledVsFull -timeout 20m ./internal/sim

# Run the simulation service locally with sensible dev defaults.
serve:
	$(GO) run ./cmd/hbserved -addr :8080 -cache-dir $${HBCACHE_DIR:-$$HOME/.cache/hbcache}

verify: build vet fmt race test
	@echo "verify: OK"

# Record→replay conformance: the binary trace format must be lossless
# (every workload replays instruction-for-instruction, same FNV stream
# hash) and trace-backed runs must be bit-identical to live-generator
# runs through every execution path — prewarm modes, batch lanes,
# sampling, snapshot resume, the runner's cache key, and the service's
# upload/resolve endpoints. -short trims the 9x3 matrix for CI; the
# full cross runs under plain `make test`.
trace:
	$(GO) test -count=1 -v -short -run 'Trace' ./internal/workload ./internal/check ./internal/sim ./internal/runner ./internal/service

# Coverage over the full module, ratcheted: the build fails if total
# statement coverage falls below COVER_MIN (current total minus half a
# point of slack — raise the floor when coverage rises, never lower it
# to admit a regression). cover.out feeds `go tool cover -html` and the
# CI artifact.
COVER_MIN ?= 74.3
cover:
	$(GO) test -shuffle=on -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub(/%/,""); print $$NF}'); \
	echo "total statement coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }' \
		|| { echo "cover: total $$total% fell below the $(COVER_MIN)% floor"; exit 1; }

# Short-budget native fuzzing: the whole simulator under invariant
# checking, the snapshot codec, and the binary trace decoder (decode of
# adversarial bytes must classify the error or round-trip, never
# panic). Go allows one -fuzz pattern per invocation, so the targets
# run back to back. FUZZTIME bounds each run (CI uses 30s); found
# crashers land in the package's testdata/fuzz and re-run as regular
# tests forever.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRunContext -fuzztime $(FUZZTIME) ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/snapshot
	$(GO) test -run '^$$' -fuzz FuzzTraceDecode -fuzztime $(FUZZTIME) ./internal/workload

# Benchmark run: BENCH selects the pattern, BENCH_COUNT the repetitions
# (use BENCH_COUNT=10 with benchstat for before/after comparisons). The
# raw output lands in bench.out and a machine-readable summary —
# ns/op, allocs/op, insts/sec, plus any custom metrics — is written to
# BENCH_<short-sha>.json for tracking across commits. When an earlier
# BENCH_*.json is committed, benchjson prints a one-line
# configs/s/core comparison against the newest one (report only; CI's
# bench-batch job applies the soft 10% gate).
BENCH ?= .
BENCH_COUNT ?= 1
bench:
	$(GO) test -run '^$$' -bench='$(BENCH)' -benchmem -count=$(BENCH_COUNT) | tee bench.out
	@sha=$$(git rev-parse --short HEAD); \
	base=$$(git ls-files 'BENCH_*.json' | xargs -r ls -t 2>/dev/null | head -1); \
	$(GO) run ./cmd/benchjson -commit $$sha $${base:+-baseline $$base} < bench.out > BENCH_$$sha.json; \
	echo "wrote BENCH_$$sha.json"
