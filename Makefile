GO ?= go

.PHONY: build test race vet fmt verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# The runner and simulator are the concurrency-sensitive packages; run
# them under the race detector in addition to the plain suite.
race:
	$(GO) test -race ./internal/runner ./internal/sim

verify: build vet fmt race test
	@echo "verify: OK"

bench:
	$(GO) test -bench=. -benchmem
