// Package hbcache reproduces "Designing High Bandwidth On-Chip Caches"
// (Wilson & Olukotun, ISCA 1997): a design-space study of multi-ported,
// banked, duplicate, pipelined multi-cycle, line-buffered, and on-chip
// DRAM primary data caches, evaluated by their effect on a four-issue
// dynamic superscalar processor's IPC and — combined with an
// FO4-normalized cache access-time model — on application execution
// time.
//
// The building blocks live under internal/:
//
//   - internal/fo4: the access-time model (the paper's Figure 1) and
//     cycle-time scaling rules.
//   - internal/isa: the dynamic instruction representation and R10000
//     latency table.
//   - internal/workload: synthetic models of the paper's nine
//     benchmarks (SPEC95 integer and floating point, plus SimOS
//     multiprogramming workloads with kernel references).
//   - internal/mem: the memory hierarchy — lockup-free multi-ported L1
//     with MSHRs, line buffer, banked/duplicate/ideal ports, off-chip
//     L2, on-chip DRAM cache with a row-buffer cache, bandwidth-limited
//     buses, and main memory.
//   - internal/cpu: the cycle-level four-issue out-of-order core.
//   - internal/sim: configuration assembly and measurement.
//   - internal/experiments: one runner per paper table and figure.
//
// Executables: cmd/hbsim (single runs), cmd/hbfigures (regenerate every
// table and figure), cmd/hbcacti (the access-time model), cmd/hbcalib
// (workload calibration aid). Runnable walkthroughs are under examples/.
//
// The benchmarks in bench_test.go regenerate each figure and print the
// same rows the paper reports; see EXPERIMENTS.md for paper-versus-
// measured comparisons.
package hbcache
